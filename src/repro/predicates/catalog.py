"""Catalogue of the paper's named message-ordering specifications.

Every specification discussed in the paper is here, with the protocol
class the paper assigns to it.  The expected class is stored as a string
(``"tagless" | "tagged" | "general" | "not_implementable"``) matching
:class:`repro.core.classifier.ProtocolClass` values, so the catalogue can
be consumed without importing the classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.predicates.ast import Conjunct, ForbiddenPredicate, deliver_of, send_of
from repro.predicates.guards import ColorGuard, ProcessGuard
from repro.predicates.spec import PredicateFamily, Specification

# ---------------------------------------------------------------------------
# Causal-ordering forms (Lemma 3.2): three equivalent predicates whose
# specification set is exactly X_co.
# ---------------------------------------------------------------------------

CAUSAL_B1 = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), deliver_of("y")),
        Conjunct(deliver_of("y"), deliver_of("x")),
    ],
    name="causal-B1",
)

CAUSAL_B2 = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(deliver_of("y"), deliver_of("x")),
    ],
    name="causal-B2",
)

CAUSAL_B3 = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(send_of("y"), deliver_of("x")),
    ],
    name="causal-B3",
)

CAUSAL_FORMS = (CAUSAL_B1, CAUSAL_B2, CAUSAL_B3)

# ---------------------------------------------------------------------------
# Unsatisfiable two-variable predicates (Lemma 3.3): their specification
# sets equal the ground set X_async, so "do nothing" implements them.
# The paper lists five; we include the complete family of zero-β
# two-vertex cycles (the printed list contains a duplicate).
# ---------------------------------------------------------------------------


def _two_cycle(p: str, q: str, p2: str, q2: str, name: str) -> ForbiddenPredicate:
    term = {"s": send_of, "r": deliver_of}
    return ForbiddenPredicate.build(
        [
            Conjunct(term[p]("x"), term[q]("y")),
            Conjunct(term[p2]("y"), term[q2]("x")),
        ],
        name=name,
    )


ASYNC_A = _two_cycle("s", "s", "s", "s", "async-a")  # x.s▷y.s ∧ y.s▷x.s
ASYNC_B = _two_cycle("s", "s", "r", "s", "async-b")  # x.s▷y.s ∧ y.r▷x.s
ASYNC_C = _two_cycle("r", "r", "r", "s", "async-c")  # x.r▷y.r ∧ y.r▷x.s
ASYNC_E = _two_cycle("r", "r", "r", "r", "async-e")  # x.r▷y.r ∧ y.r▷x.r
ASYNC_F = _two_cycle("r", "s", "r", "s", "async-f")  # x.r▷y.s ∧ y.r▷x.s
ASYNC_G = _two_cycle("r", "s", "r", "r", "async-g")  # x.r▷y.s ∧ y.r▷x.r
ASYNC_H = _two_cycle("s", "r", "r", "s", "async-h")  # x.s▷y.r ∧ y.r▷x.s

ASYNC_FORMS = (ASYNC_A, ASYNC_B, ASYNC_C, ASYNC_E, ASYNC_F, ASYNC_G, ASYNC_H)

# ---------------------------------------------------------------------------
# The logically synchronous family (Lemma 3.1): crowns of every length.
# ---------------------------------------------------------------------------


def crown(k: int) -> ForbiddenPredicate:
    """``(x1.s ▷ x2.r) ∧ (x2.s ▷ x3.r) ∧ ... ∧ (xk.s ▷ x1.r)`` for ``k ≥ 2``."""
    if k < 2:
        raise ValueError("crowns need k >= 2 (got %d)" % k)
    variables = ["x%d" % (i + 1) for i in range(k)]
    conjuncts = [
        Conjunct(send_of(variables[i]), deliver_of(variables[(i + 1) % k]))
        for i in range(k)
    ]
    # The crown quantifies over *distinct* messages: with x1 = x2 the
    # 2-crown collapses to x.s ▷ x.r, which every delivered message
    # satisfies (the paper's ∀x_j ∈ M implicitly means distinct x_j).
    return ForbiddenPredicate.build(conjuncts, name="crown-%d" % k, distinct=True)


CROWN_FAMILY = PredicateFamily(name="crowns", generator=crown, k_min=2)


def _no_crown_oracle(run) -> bool:
    """Exact membership for the crown family: a crown of some length
    exists iff the run's message graph has a cycle (checked in polynomial
    time instead of searching every crown arity)."""
    from repro.runs.limit_sets import sync_numbering

    return sync_numbering(run) is not None


LOGICALLY_SYNCHRONOUS = Specification(
    name="logically-synchronous",
    families=(CROWN_FAMILY,),
    description="Time diagram redrawable with vertical message arrows; "
    "forbids every crown x1.s▷x2.r ∧ ... ∧ xk.s▷x1.r.",
    oracle=_no_crown_oracle,
    family_arity_cap=6,
)

CAUSAL_ORDERING = Specification(
    name="causal-ordering",
    predicates=(CAUSAL_B2,),
    description="x.s ▷ y.s implies not (y.r ▷ x.r).",
)

ASYNC_ORDERING = Specification(
    name="asynchronous-ordering",
    predicates=(ASYNC_A,),
    description="The ground set X_async (the forbidden pattern is "
    "unsatisfiable, so every run is admitted).",
)

# ---------------------------------------------------------------------------
# §6 discussion specifications.
# ---------------------------------------------------------------------------

FIFO = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(deliver_of("y"), deliver_of("x")),
    ],
    guards=[
        ProcessGuard(("x", "sender"), ("y", "sender")),
        ProcessGuard(("x", "receiver"), ("y", "receiver")),
    ],
    name="fifo",
)

FIFO_ORDERING = Specification(
    name="fifo",
    predicates=(FIFO,),
    description="Messages on the same channel are delivered in send order.",
)


def k_weaker_causal(k: int) -> ForbiddenPredicate:
    """§6: messages may be delivered out of causal order by at most ``k``.

    Forbidden: a causal chain of ``k + 2`` sends whose last message is
    delivered before the first
    (``s1 ▷ s2 ∧ ... ∧ s_{k+1} ▷ s_{k+2} ∧ r_{k+2} ▷ r1``).
    ``k = 0`` degenerates to causal ordering.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    count = k + 2
    variables = ["x%d" % (i + 1) for i in range(count)]
    conjuncts = [
        Conjunct(send_of(variables[i]), send_of(variables[i + 1]))
        for i in range(count - 1)
    ]
    conjuncts.append(Conjunct(deliver_of(variables[-1]), deliver_of(variables[0])))
    return ForbiddenPredicate.build(conjuncts, name="k-weaker-causal-%d" % k)


def k_weaker_causal_spec(k: int) -> Specification:
    return Specification(
        name="k-weaker-causal-%d" % k,
        predicates=(k_weaker_causal(k),),
        description="Delivery may disagree with causal send order by at most"
        " %d messages." % k,
    )


def channel_k_weaker(k: int) -> ForbiddenPredicate:
    """Per-channel window ordering: messages on one channel may be
    delivered out of order by at most ``k`` (FIFO is ``k = 0``)."""
    base = k_weaker_causal(k)
    variables = base.variables
    guards = []
    anchor = variables[0]
    for other in variables[1:]:
        guards.append(ProcessGuard((anchor, "sender"), (other, "sender")))
        guards.append(ProcessGuard((anchor, "receiver"), (other, "receiver")))
    return ForbiddenPredicate.build(
        base.conjuncts, guards=guards, name="channel-%d-window" % k
    )


LOCAL_FORWARD_FLUSH = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(deliver_of("y"), deliver_of("x")),
    ],
    guards=[
        ProcessGuard(("x", "sender"), ("y", "sender")),
        ProcessGuard(("x", "receiver"), ("y", "receiver")),
        ColorGuard("y", "red"),
    ],
    name="local-forward-flush",
)

GLOBAL_FORWARD_FLUSH = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(deliver_of("y"), deliver_of("x")),
    ],
    guards=[ColorGuard("y", "red")],
    name="global-forward-flush",
)

# "All red messages delivered before any blue message at each process":
# a single edge x -> y, no cycle -- a process cannot hold a blue message
# for red messages that have not even been sent yet (not implementable,
# the same knowing-the-future obstacle as SECOND_BEFORE_FIRST).
PRIORITY_CLASSES = ForbiddenPredicate.build(
    [Conjunct(deliver_of("x"), deliver_of("y"))],
    guards=[
        ColorGuard("x", "blue"),
        ColorGuard("y", "red"),
        ProcessGuard(("x", "receiver"), ("y", "receiver")),
    ],
    name="priority-classes",
)

GLOBAL_BACKWARD_FLUSH = ForbiddenPredicate.build(
    [
        Conjunct(send_of("y"), send_of("x")),
        Conjunct(deliver_of("x"), deliver_of("y")),
    ],
    guards=[ColorGuard("y", "red")],
    name="global-backward-flush",
)

LOCAL_BACKWARD_FLUSH = ForbiddenPredicate.build(
    [
        Conjunct(send_of("y"), send_of("x")),
        Conjunct(deliver_of("x"), deliver_of("y")),
    ],
    guards=[
        ProcessGuard(("x", "sender"), ("y", "sender")),
        ProcessGuard(("x", "receiver"), ("y", "receiver")),
        ColorGuard("y", "red"),
    ],
    name="local-backward-flush",
)

TWO_WAY_FLUSH = Specification(
    name="two-way-flush",
    predicates=(LOCAL_FORWARD_FLUSH, LOCAL_BACKWARD_FLUSH),
    description="A red flush message is a channel barrier in both "
    "directions (Ahuja's F-channels).",
)

MOBILE_HANDOFF = ForbiddenPredicate.build(
    [
        Conjunct(send_of("y"), deliver_of("x")),
        Conjunct(send_of("x"), deliver_of("y")),
    ],
    guards=[ColorGuard("x", "handoff")],
    name="mobile-handoff",
    distinct=True,
)

MOBILE_HANDOFF_SPEC = Specification(
    name="mobile-handoff",
    predicates=(MOBILE_HANDOFF,),
    description="§6: no message may cross a handoff message; every other "
    "message is ordered entirely before or after it.",
)

# "Deliver the second message before the first": the predicate graph has
# two parallel edges x -> y and no cycle, so the specification is not
# implementable (§6).
SECOND_BEFORE_FIRST = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(deliver_of("x"), deliver_of("y")),
    ],
    guards=[
        ProcessGuard(("x", "sender"), ("y", "sender")),
        ProcessGuard(("x", "receiver"), ("y", "receiver")),
    ],
    name="second-before-first",
)

# Example 1 of §4.2: six conjuncts over five variables -- the worked
# example for predicate graphs, cycles and β vertices.  Its graph has two
# cycles: the four-vertex cycle Example 2 analyses (through the conjunct
# x4.s ▷ x1.s) and a two-vertex cycle x1 <-> x4 (through x1.s ▷ x4.r).
EXAMPLE_1 = ForbiddenPredicate.build(
    [
        Conjunct(deliver_of("x1"), send_of("x2")),
        Conjunct(send_of("x2"), send_of("x3")),
        Conjunct(deliver_of("x3"), deliver_of("x4")),
        Conjunct(send_of("x4"), deliver_of("x5")),
        Conjunct(send_of("x4"), send_of("x1")),
        Conjunct(send_of("x1"), deliver_of("x4")),
    ],
    name="example-1",
)

# The red-marker ordering of §4.1: "messages should not overtake the red
# marker message".
RED_MARKER_NO_OVERTAKE = ForbiddenPredicate.build(
    [
        Conjunct(send_of("x"), send_of("y")),
        Conjunct(deliver_of("y"), deliver_of("x")),
    ],
    guards=[ColorGuard("y", "red")],
    name="red-marker-no-overtake",
)


# ---------------------------------------------------------------------------
# The catalogue registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CatalogEntry:
    """One named specification with the paper's expected classification."""

    name: str
    specification: Specification
    expected_class: str  # "tagless" | "tagged" | "general" | "not_implementable"
    paper_ref: str
    notes: str = ""


def _single(predicate: ForbiddenPredicate, description: str = "") -> Specification:
    return Specification(
        name=predicate.name or "anonymous",
        predicates=(predicate,),
        description=description,
    )


CATALOG: Tuple[CatalogEntry, ...] = (
    CatalogEntry(
        "asynchronous",
        ASYNC_ORDERING,
        "tagless",
        "§3.4",
        "Ground set; the trivial protocol suffices.",
    ),
    CatalogEntry(
        "causal-B1", _single(CAUSAL_B1), "tagged", "Lemma 3.2a"
    ),
    CatalogEntry(
        "causal-B2",
        CAUSAL_ORDERING,
        "tagged",
        "Lemma 3.2b",
        "The canonical causal-ordering predicate.",
    ),
    CatalogEntry(
        "causal-B3", _single(CAUSAL_B3), "tagged", "Lemma 3.2c"
    ),
    CatalogEntry(
        "logically-synchronous",
        LOGICALLY_SYNCHRONOUS,
        "general",
        "Lemma 3.1",
        "Every crown k >= 2 must be forbidden; control messages required.",
    ),
    CatalogEntry(
        "fifo",
        FIFO_ORDERING,
        "tagged",
        "§4.1 / §6",
        "Sequence numbers (a form of tagging) implement it.",
    ),
    CatalogEntry(
        "k-weaker-causal-1",
        k_weaker_causal_spec(1),
        "tagged",
        "§6",
    ),
    CatalogEntry(
        "k-weaker-causal-2",
        k_weaker_causal_spec(2),
        "tagged",
        "§6",
    ),
    CatalogEntry(
        "channel-1-window",
        _single(channel_k_weaker(1)),
        "tagged",
        "(new; per-channel variant of §6's k-weaker ordering)",
        "Same-channel deliveries may lag send order by at most one.",
    ),
    CatalogEntry(
        "local-forward-flush",
        _single(LOCAL_FORWARD_FLUSH),
        "tagged",
        "§6",
    ),
    CatalogEntry(
        "global-forward-flush",
        _single(GLOBAL_FORWARD_FLUSH),
        "tagged",
        "§6",
    ),
    CatalogEntry(
        "local-backward-flush",
        _single(LOCAL_BACKWARD_FLUSH),
        "tagged",
        "§2 (F-channels)",
    ),
    CatalogEntry(
        "global-backward-flush",
        _single(GLOBAL_BACKWARD_FLUSH),
        "tagged",
        "§2 (F-channels)",
    ),
    CatalogEntry(
        "priority-classes",
        _single(PRIORITY_CLASSES),
        "not_implementable",
        "(new; same obstacle as §6's second-before-first)",
        "Blue after all reds needs knowledge of future sends.",
    ),
    CatalogEntry(
        "two-way-flush",
        TWO_WAY_FLUSH,
        "tagged",
        "§2 (F-channels)",
        "Both directions of the flush barrier; still no control messages.",
    ),
    CatalogEntry(
        "red-marker-no-overtake",
        _single(RED_MARKER_NO_OVERTAKE),
        "tagged",
        "§4.1",
    ),
    CatalogEntry(
        "mobile-handoff",
        MOBILE_HANDOFF_SPEC,
        "general",
        "§6",
        "No message may cross the handoff; a 2-crown with a colour guard.",
    ),
    CatalogEntry(
        "second-before-first",
        _single(SECOND_BEFORE_FIRST),
        "not_implementable",
        "§6",
        "Parallel edges, no cycle: would require knowing the future.",
    ),
    CatalogEntry(
        "example-1",
        _single(EXAMPLE_1),
        "tagged",
        "§4.2 Examples 1-3",
        "The worked example: two cycles, both of order 1 with β vertex x4.",
    ),
) + tuple(
    CatalogEntry(
        predicate.name,
        _single(predicate),
        "tagless",
        "Lemma 3.3",
        "Unsatisfiable pattern; specification set equals X_async.",
    )
    for predicate in ASYNC_FORMS
)


def catalog_by_name() -> Dict[str, CatalogEntry]:
    return {entry.name: entry for entry in CATALOG}


def catalog_names() -> List[str]:
    return [entry.name for entry in CATALOG]
