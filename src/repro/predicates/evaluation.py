"""Evaluating forbidden predicates over user-view runs.

A run is *admitted* by the specification ``X_B`` when **no** assignment of
messages to the predicate's variables satisfies all guards and conjuncts.
:func:`satisfying_assignments` is the reference semantics: a direct
enumeration in declared variable order with guard and conjunct pruning.
:func:`find_assignment` and :func:`run_admitted` answer the same question
through the compiled plans of :mod:`repro.verification.engine`, which
order variables by selectivity and narrow candidates through attribute
indexes -- the satisfying set is identical, only the search order differs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional

from repro.events import Event, Message
from repro.predicates.ast import Conjunct, ForbiddenPredicate
from repro.runs.user_run import UserRun

Assignment = Dict[str, Message]


def _conjunct_holds(
    run: UserRun, conjunct: Conjunct, assignment: Mapping[str, Message]
) -> bool:
    left_message = assignment[conjunct.left.variable]
    right_message = assignment[conjunct.right.variable]
    left_event = Event(left_message.id, conjunct.left.kind)
    right_event = Event(right_message.id, conjunct.right.kind)
    if not (run.has_event(left_event) and run.has_event(right_event)):
        return False
    return run.before(left_event, right_event)


def satisfying_assignments(
    run: UserRun, predicate: ForbiddenPredicate
) -> Iterator[Assignment]:
    """Yield every assignment under which ``predicate`` holds in ``run``."""
    messages = run.messages()
    order = predicate.variables

    # Index guards/conjuncts by the prefix length at which they become
    # checkable, so partial assignments are pruned early.
    position = {variable: i for i, variable in enumerate(order)}
    checkable_conjuncts: List[List[Conjunct]] = [[] for _ in order]
    for conjunct in predicate.conjuncts:
        latest = max(position[v] for v in conjunct.variables())
        checkable_conjuncts[latest].append(conjunct)
    checkable_guards: List[List] = [[] for _ in order]
    for guard in predicate.guards:
        latest = max(position[v] for v in guard.variables())
        checkable_guards[latest].append(guard)

    assignment: Assignment = {}

    def extend(depth: int) -> Iterator[Assignment]:
        if depth == len(order):
            yield dict(assignment)
            return
        variable = order[depth]
        for message in messages:
            if predicate.distinct and any(
                bound.id == message.id for bound in assignment.values()
            ):
                continue
            assignment[variable] = message
            if all(
                guard.holds(assignment) for guard in checkable_guards[depth]
            ) and all(
                _conjunct_holds(run, conjunct, assignment)
                for conjunct in checkable_conjuncts[depth]
            ):
                for complete in extend(depth + 1):
                    yield complete
            del assignment[variable]

    return extend(0)


def find_assignment(
    run: UserRun, predicate: ForbiddenPredicate
) -> Optional[Assignment]:
    """The first satisfying assignment, or ``None`` when the run is admitted.

    Evaluated through the compiled plans of
    :mod:`repro.verification.engine` (same satisfying set as
    :func:`satisfying_assignments`, found through indexed candidate
    narrowing instead of full enumeration).
    """
    # Imported lazily: the engine depends on this module's Assignment
    # semantics via repro.predicates.spec.
    from repro.verification.engine import batch_find_assignment

    return batch_find_assignment(run, predicate)


def run_admitted(run: UserRun, predicate: ForbiddenPredicate) -> bool:
    """``True`` iff ``run ∈ X_B`` (the forbidden pattern never occurs)."""
    return find_assignment(run, predicate) is None
