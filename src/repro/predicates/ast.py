"""AST for forbidden predicates.

A predicate is an existential conjunction of causality atoms between the
*user-visible* events (send ``x.s``, delivery ``x.r``) of message
variables, optionally guarded by attribute constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.events import DELIVER, SEND, EventKind
from repro.predicates.guards import Guard


@dataclass(frozen=True, order=True)
class EventTerm:
    """An event of a message variable: ``x.s`` or ``x.r``."""

    variable: str
    kind: EventKind

    def __post_init__(self) -> None:
        if self.kind not in (SEND, DELIVER):
            raise ValueError(
                "predicates range over user events (s, r); got %r" % (self.kind,)
            )

    def __repr__(self) -> str:
        return "%s.%s" % (self.variable, self.kind.symbol)


def send_of(variable: str) -> EventTerm:
    """The term ``variable.s``."""
    return EventTerm(variable, SEND)


def deliver_of(variable: str) -> EventTerm:
    """The term ``variable.r``."""
    return EventTerm(variable, DELIVER)


@dataclass(frozen=True, order=True)
class Conjunct:
    """A causality atom ``left ▷ right``."""

    left: EventTerm
    right: EventTerm

    def variables(self) -> Tuple[str, ...]:
        """The distinct variables this atom mentions, left first."""
        if self.left.variable == self.right.variable:
            return (self.left.variable,)
        return (self.left.variable, self.right.variable)

    @property
    def is_self_loop(self) -> bool:
        return self.left.variable == self.right.variable

    @property
    def is_intrinsically_false(self) -> bool:
        """``True`` when no run can satisfy this atom alone.

        With ``x.s ▷ x.r`` holding in every run, the self-atoms
        ``x.s ▷ x.s``, ``x.r ▷ x.r`` and ``x.r ▷ x.s`` each force an event
        before itself.
        """
        if not self.is_self_loop:
            return False
        return not (self.left.kind is SEND and self.right.kind is DELIVER)

    @property
    def is_degenerate_self_edge(self) -> bool:
        """``True`` for ``x.s ▷ x.r`` -- satisfied by *every* delivered
        message, so forbidding it outlaws delivery itself."""
        return (
            self.is_self_loop
            and self.left.kind is SEND
            and self.right.kind is DELIVER
        )

    def __repr__(self) -> str:
        return "(%r > %r)" % (self.left, self.right)


@dataclass(frozen=True)
class ForbiddenPredicate:
    """``B ≡ ∃ x1..xm ∈ M [guards] : ∧ conjuncts``.

    ``variables`` fixes the quantifier order (and the vertex order of the
    predicate graph).  Distinct variables may bind the same message unless
    ``distinct`` is set; the paper's quantification allows repeats (the
    conjuncts of sensible predicates self-falsify on repeated bindings).
    """

    variables: Tuple[str, ...]
    conjuncts: Tuple[Conjunct, ...]
    guards: Tuple[Guard, ...] = ()
    name: Optional[str] = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.conjuncts:
            raise ValueError("a forbidden predicate needs at least one conjunct")
        declared = set(self.variables)
        used = {v for c in self.conjuncts for v in c.variables()}
        for guard in self.guards:
            used |= set(guard.variables())
        missing = used - declared
        if missing:
            raise ValueError("conjuncts/guards use undeclared variables %s" % sorted(missing))
        if len(declared) != len(self.variables):
            raise ValueError("duplicate variable names in %s" % (self.variables,))

    @staticmethod
    def build(
        conjuncts: Sequence[Conjunct],
        guards: Sequence[Guard] = (),
        name: Optional[str] = None,
        distinct: bool = False,
    ) -> "ForbiddenPredicate":
        """Construct with variables inferred in order of first use."""
        seen = []
        for conjunct in conjuncts:
            for variable in conjunct.variables():
                if variable not in seen:
                    seen.append(variable)
        for guard in guards:
            for variable in guard.variables():
                if variable not in seen:
                    seen.append(variable)
        return ForbiddenPredicate(
            variables=tuple(seen),
            conjuncts=tuple(conjuncts),
            guards=tuple(guards),
            name=name,
            distinct=distinct,
        )

    @property
    def arity(self) -> int:
        return len(self.variables)

    def without_conjunct(self, index: int) -> "ForbiddenPredicate":
        """A weaker predicate with one conjunct removed (Lemma 4 steps)."""
        remaining = tuple(
            c for i, c in enumerate(self.conjuncts) if i != index
        )
        return ForbiddenPredicate.build(
            remaining, guards=self.guards, name=None, distinct=self.distinct
        )

    def __repr__(self) -> str:
        body = " & ".join(repr(c) for c in self.conjuncts)
        guard_text = (
            "[%s] " % ", ".join(repr(g) for g in self.guards) if self.guards else ""
        )
        label = "%s: " % self.name if self.name else ""
        return "%sexists %s %s: %s%s" % (
            label,
            ",".join(self.variables),
            guard_text,
            "distinct " if self.distinct else "",
            body,
        )
