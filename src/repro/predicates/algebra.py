"""Algebra on predicates and specifications.

Two notions of implication, both used by the paper:

- *syntactic*: ``B ⇒ B'`` when every conjunct of ``B'`` already holds in
  the free closure of ``B``'s conjuncts plus the implicit ``x.s ▷ x.r``
  edges -- the derivation style of Lemma 3's proofs ("combining the first
  and third conjuncts...").  It entails ``X_B ⊆ X_B'``.
- *semantic over a universe*: containment of admitted-run sets checked by
  exhaustive enumeration (complete for the bounded universe; the default
  two-process/two-message universe decides all the two-variable forms).

Plus ``conjoin`` -- intersecting specifications by pooling their
forbidden predicates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.events import Event
from repro.poset.digraph import Digraph
from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.runs.enumeration import enumerate_universe
from repro.runs.user_run import UserRun


def free_closure_graph(predicate: ForbiddenPredicate) -> Digraph:
    """The event graph of the conjunction: conjunct edges plus the
    implicit ``v.s → v.r`` edge for every variable."""
    from repro.events import DELIVER, SEND

    graph = Digraph()
    for variable in predicate.variables:
        graph.add_edge((variable, SEND), (variable, DELIVER))
    for conjunct in predicate.conjuncts:
        graph.add_edge(
            (conjunct.left.variable, conjunct.left.kind),
            (conjunct.right.variable, conjunct.right.kind),
        )
    return graph


def syntactically_implies(
    stronger: ForbiddenPredicate, weaker: ForbiddenPredicate
) -> bool:
    """``stronger ⇒ weaker`` by pure derivation (identity variable map).

    Every conjunct of ``weaker`` must be reachable in ``stronger``'s free
    closure, and ``weaker``'s guards must be a subset of ``stronger``'s.
    Sound but (deliberately) not complete: no variable renaming or guard
    reasoning is attempted.
    """
    if not set(weaker.variables) <= set(stronger.variables):
        return False
    if not set(weaker.guards) <= set(stronger.guards):
        return False
    graph = free_closure_graph(stronger)
    for conjunct in weaker.conjuncts:
        start = (conjunct.left.variable, conjunct.left.kind)
        goal = (conjunct.right.variable, conjunct.right.kind)
        if start not in graph or goal not in graph:
            return False
        if goal not in graph.reachable_from(start):
            return False
    return True


def spec_contains(
    larger: Specification,
    smaller: Specification,
    n_processes: int = 2,
    n_messages: int = 2,
    colors: Sequence[Optional[str]] = (None,),
) -> Tuple[bool, Optional[UserRun]]:
    """``smaller ⊆ larger`` as run sets, checked exhaustively on the
    bounded universe.  Returns a counterexample run on failure.

    (Note the direction: a *stronger predicate* denotes a *larger* run
    set is false -- a stronger forbidden pattern forbids less, so
    ``B ⇒ B'`` gives ``X_B ⊆ X_B'``.)
    """
    for run in enumerate_universe(n_processes, n_messages, colors=colors):
        if smaller.admits(run) and not larger.admits(run):
            return False, run
    return True, None


def conjoin(name: str, *specs: Specification) -> Specification:
    """The intersection of specifications: pool all their predicates and
    families (a run is admitted iff every member admits it)."""
    predicates = tuple(p for spec in specs for p in spec.predicates)
    families = tuple(f for spec in specs for f in spec.families)
    return Specification(
        name=name,
        predicates=predicates,
        families=families,
        description="intersection of: %s" % ", ".join(s.name for s in specs),
    )
