"""Attribute guards on predicate variables (§4.1).

The paper allows three message attributes in specifications: the sending
process, the receiving process, and a colour.  Guards restrict which
message tuples a forbidden predicate quantifies over; they never mention
causality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.events import Message

# Roles name the two process attributes of a message.
SENDER = "sender"
RECEIVER = "receiver"
_ROLES = (SENDER, RECEIVER)


class Guard:
    """Base class: a boolean constraint over a variable assignment."""

    def variables(self) -> Tuple[str, ...]:
        """The variables the guard constrains."""
        raise NotImplementedError

    def holds(self, assignment: Mapping[str, Message]) -> bool:
        """Evaluate the guard under a variable-to-message assignment."""
        raise NotImplementedError


@dataclass(frozen=True)
class ProcessGuard(Guard):
    """``process(x.p) = process(y.q)`` (or ``≠``).

    ``left``/``right`` are ``(variable, role)`` pairs where role is
    ``"sender"`` (the process of ``x.s``) or ``"receiver"`` (of ``x.r``).
    """

    left: Tuple[str, str]
    right: Tuple[str, str]
    equal: bool = True

    def __post_init__(self) -> None:
        for _, role in (self.left, self.right):
            if role not in _ROLES:
                raise ValueError("role must be 'sender' or 'receiver', got %r" % role)

    def variables(self) -> Tuple[str, ...]:
        """The variables the guard constrains."""
        if self.left[0] == self.right[0]:
            return (self.left[0],)
        return (self.left[0], self.right[0])

    def holds(self, assignment: Mapping[str, Message]) -> bool:
        """Compare the two process attributes under ``assignment``."""
        left_value = assignment[self.left[0]].attribute(self.left[1])
        right_value = assignment[self.right[0]].attribute(self.right[1])
        return (left_value == right_value) == self.equal

    def __repr__(self) -> str:
        op = "=" if self.equal else "!="
        return "%s(%s) %s %s(%s)" % (
            self.left[1],
            self.left[0],
            op,
            self.right[1],
            self.right[0],
        )


@dataclass(frozen=True)
class ColorGuard(Guard):
    """``color(x) = constant`` (or ``≠``)."""

    variable: str
    color: str
    equal: bool = True

    def variables(self) -> Tuple[str, ...]:
        """The single constrained variable."""
        return (self.variable,)

    def holds(self, assignment: Mapping[str, Message]) -> bool:
        """Compare the variable's colour with the constant."""
        return (assignment[self.variable].color == self.color) == self.equal

    def __repr__(self) -> str:
        op = "=" if self.equal else "!="
        return "color(%s) %s %s" % (self.variable, op, self.color)


@dataclass(frozen=True)
class KeyGuard(Guard):
    """``key(x) = key(y)`` (or ``≠``) over effective ordering keys.

    The sharded runtime (:mod:`repro.net.shard`) sequences messages per
    *ordering key*; scoping a specification to one key attaches a
    same-key guard to its predicate, while a cross-key lifting couples
    variables through a different-key guard.  The key attribute is total
    (unkeyed messages default to their channel key), so unlike
    :class:`GroupGuard` absence can never falsify an equality.
    """

    left: str
    right: str
    equal: bool = True

    def variables(self) -> Tuple[str, ...]:
        """The variables the guard constrains."""
        if self.left == self.right:
            return (self.left,)
        return (self.left, self.right)

    def holds(self, assignment: Mapping[str, Message]) -> bool:
        """Compare the two effective ordering keys."""
        left_key = assignment[self.left].attribute("key")
        right_key = assignment[self.right].attribute("key")
        return (left_key == right_key) == self.equal

    def __repr__(self) -> str:
        op = "=" if self.equal else "!="
        return "key(%s) %s key(%s)" % (self.left, op, self.right)


@dataclass(frozen=True)
class GroupGuard(Guard):
    """``group(x) = group(y)`` (or ``≠``), both groups being present.

    Part of the §7 multicast extension: two variables in the same group
    bind copies of one logical broadcast.  NOTE: the predicate-graph
    classifier does not model the shared-send structure group equality
    implies; see :mod:`repro.broadcast` for the supported treatment.
    """

    left: str
    right: str
    equal: bool = True

    def variables(self) -> Tuple[str, ...]:
        """The variables the guard constrains."""
        if self.left == self.right:
            return (self.left,)
        return (self.left, self.right)

    def holds(self, assignment: Mapping[str, Message]) -> bool:
        """Compare the two group ids (absent groups never match)."""
        left_group = assignment[self.left].group
        right_group = assignment[self.right].group
        if left_group is None or right_group is None:
            return False
        return (left_group == right_group) == self.equal

    def __repr__(self) -> str:
        op = "=" if self.equal else "!="
        return "group(%s) %s group(%s)" % (self.left, op, self.right)


def guards_satisfiable(guards: Tuple[Guard, ...]) -> bool:
    """Whether *some* attribute assignment satisfies all guards.

    Equality guards are closed under union-find; a conflict arises when a
    variable is forced to two different colour constants, when an equality
    class contains contradictory colours, or when a disequality connects
    two slots already forced equal.  Process slots have an unbounded
    domain, so equalities alone are always satisfiable.
    """
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(slot: Tuple[str, str]) -> Tuple[str, str]:
        parent.setdefault(slot, slot)
        while parent[slot] != slot:
            parent[slot] = parent[parent[slot]]
            slot = parent[slot]
        return slot

    def union(a: Tuple[str, str], b: Tuple[str, str]) -> None:
        parent[find(a)] = find(b)

    color_of: Dict[str, str] = {}
    color_not: Dict[str, set] = {}
    for guard in guards:
        if isinstance(guard, ColorGuard):
            if guard.equal:
                existing = color_of.get(guard.variable)
                if existing is not None and existing != guard.color:
                    return False
                color_of[guard.variable] = guard.color
            else:
                color_not.setdefault(guard.variable, set()).add(guard.color)
        elif isinstance(guard, ProcessGuard) and guard.equal:
            union(guard.left, guard.right)
        elif isinstance(guard, KeyGuard) and guard.equal:
            # Key slots live in their own namespace ("#key" is not a
            # process role), sharing the same union-find machinery.
            union((guard.left, "#key"), (guard.right, "#key"))

    for variable, forbidden in color_not.items():
        if color_of.get(variable) in forbidden:
            return False

    for guard in guards:
        if isinstance(guard, ProcessGuard) and not guard.equal:
            if find(guard.left) == find(guard.right):
                return False
        elif isinstance(guard, KeyGuard) and not guard.equal:
            if find((guard.left, "#key")) == find((guard.right, "#key")):
                return False
    return True
