"""Forbidden predicates (§4): a finite syntax for message orderings.

A forbidden predicate ``B ≡ ∃ x1..xm ∈ M : ∧ (xj.p ▷ xk.q)`` -- optionally
guarded by message attributes -- denotes the specification
``X_B = { runs | no instantiation of the variables satisfies B }``.
"""

from repro.predicates.ast import (
    Conjunct,
    EventTerm,
    ForbiddenPredicate,
    deliver_of,
    send_of,
)
from repro.predicates.guards import ColorGuard, Guard, KeyGuard, ProcessGuard
from repro.predicates.dsl import parse_predicate
from repro.predicates.evaluation import (
    find_assignment,
    satisfying_assignments,
    run_admitted,
)
from repro.predicates.spec import Specification, PredicateFamily

__all__ = [
    "EventTerm",
    "Conjunct",
    "ForbiddenPredicate",
    "send_of",
    "deliver_of",
    "Guard",
    "ProcessGuard",
    "ColorGuard",
    "KeyGuard",
    "parse_predicate",
    "find_assignment",
    "satisfying_assignments",
    "run_admitted",
    "Specification",
    "PredicateFamily",
]
