"""Specifications: sets of complete runs described by forbidden predicates.

A :class:`Specification` is an intersection of the specification sets of
one or more forbidden predicates.  Some orderings (logically synchronous
ordering) need a *family* of predicates -- one per cycle length ``k ≥ 2``;
a :class:`PredicateFamily` generates the members needed for a given run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.evaluation import find_assignment, run_admitted
from repro.runs.user_run import UserRun


@dataclass(frozen=True)
class PredicateFamily:
    """An indexed family ``{ B_k : k in k_min.. }`` of forbidden predicates.

    ``generator(k)`` must return the ``k``-th member.  When evaluating a
    run, only members with arity up to the run's message count can possibly
    fire, so :meth:`instances` is bounded by the run size.
    """

    name: str
    generator: Callable[[int], ForbiddenPredicate]
    k_min: int = 2

    def instances(self, max_arity: int) -> List[ForbiddenPredicate]:
        """Members of the family with arity up to ``max_arity``."""
        members = []
        k = self.k_min
        while True:
            member = self.generator(k)
            if member.arity > max_arity:
                break
            members.append(member)
            k += 1
        return members

    def __repr__(self) -> str:
        return "PredicateFamily(%s, k >= %d)" % (self.name, self.k_min)


@dataclass(frozen=True)
class Specification:
    """A message-ordering specification ``Y = ∩ X_B`` over its predicates.

    ``predicates`` are fixed members; ``families`` contribute every member
    whose arity fits the run being checked.

    ``oracle`` is an optional fast membership test equivalent to the
    predicate semantics (e.g. message-graph acyclicity for the crown
    family, which avoids exponential crown search on large runs); when
    set, :meth:`admits` uses it.  ``family_arity_cap`` bounds how large
    family members :meth:`members_for` instantiates -- set it together
    with an oracle so violation *search* stays tractable while membership
    remains exact.
    """

    name: str
    predicates: Tuple[ForbiddenPredicate, ...] = ()
    families: Tuple[PredicateFamily, ...] = ()
    description: str = ""
    oracle: Optional[Callable[[UserRun], bool]] = None
    family_arity_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.predicates and not self.families:
            raise ValueError("a specification needs predicates or families")

    def members_for(self, run: UserRun) -> List[ForbiddenPredicate]:
        """All predicates that could fire on ``run`` (bounded by its size
        and by ``family_arity_cap`` for family members)."""
        max_arity = len(run.messages())
        members = [p for p in self.predicates if p.arity <= max_arity]
        family_arity = max_arity
        if self.family_arity_cap is not None:
            family_arity = min(family_arity, self.family_arity_cap)
        for family in self.families:
            members.extend(family.instances(family_arity))
        return members

    def all_predicates(self, max_arity: int) -> List[ForbiddenPredicate]:
        """Fixed members plus family members up to ``max_arity``."""
        members = [p for p in self.predicates]
        for family in self.families:
            members.extend(family.instances(max_arity))
        return members

    def admits(self, run: UserRun) -> bool:
        """``True`` iff ``run ∈ Y``."""
        if self.oracle is not None:
            return self.oracle(run)
        # One shared message index across all members (the engine's batch
        # path); equivalent to checking run_admitted per member.
        from repro.verification.engine import batch_run_admitted, index_for_run

        index = index_for_run(run)
        return all(
            batch_run_admitted(run, member, index=index)
            for member in self.members_for(run)
        )

    def violations(self, run: UserRun) -> List[Tuple[ForbiddenPredicate, dict]]:
        """Every (predicate, witness assignment) that fires on ``run``."""
        found = []
        for member in self.members_for(run):
            assignment = find_assignment(run, member)
            if assignment is not None:
                found.append((member, assignment))
        return found

    def __repr__(self) -> str:
        return "Specification(%s, predicates=%d, families=%d)" % (
            self.name,
            len(self.predicates),
            len(self.families),
        )
