"""A small text syntax for forbidden predicates.

Examples
--------
>>> parse_predicate("x.s < y.s & y.r < x.r")                # causal ordering
>>> parse_predicate(
...     "sender(x) = sender(y), receiver(x) = receiver(y) ::"
...     " x.s < y.s & y.r < x.r")                            # FIFO
>>> parse_predicate("color(y) = red :: x.s < y.s & y.r < x.r")

Grammar
-------
::

    predicate := [ guards "::" ] conjunct ( "&" conjunct )*
    guards    := guard ( "," guard )*
    guard     := attr "(" VAR ")" op attr "(" VAR ")"     -- process guards
               | "color" "(" VAR ")" op IDENT             -- colour guards
    attr      := "sender" | "receiver"
    op        := "=" | "!="
    conjunct  := term ( "<" | "->" ) term                  -- left ▷ right
    term      := VAR "." ( "s" | "r" )
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.events import DELIVER, SEND
from repro.predicates.ast import Conjunct, EventTerm, ForbiddenPredicate
from repro.predicates.guards import ColorGuard, GroupGuard, Guard, ProcessGuard

_TERM_RE = re.compile(r"^\s*([A-Za-z_]\w*)\.(s|r)\s*$")
_PROCESS_GUARD_RE = re.compile(
    r"^\s*(sender|receiver)\(\s*([A-Za-z_]\w*)\s*\)\s*(!?=)\s*"
    r"(sender|receiver)\(\s*([A-Za-z_]\w*)\s*\)\s*$"
)
_COLOR_GUARD_RE = re.compile(
    r"^\s*color\(\s*([A-Za-z_]\w*)\s*\)\s*(!?=)\s*([A-Za-z_]\w*)\s*$"
)
_GROUP_GUARD_RE = re.compile(
    r"^\s*group\(\s*([A-Za-z_]\w*)\s*\)\s*(!?=)\s*"
    r"group\(\s*([A-Za-z_]\w*)\s*\)\s*$"
)

_KIND = {"s": SEND, "r": DELIVER}


class PredicateSyntaxError(ValueError):
    """Raised on malformed predicate text."""


def _parse_term(text: str) -> EventTerm:
    match = _TERM_RE.match(text)
    if not match:
        raise PredicateSyntaxError("bad event term %r (expected e.g. 'x.s')" % text)
    variable, kind = match.groups()
    return EventTerm(variable, _KIND[kind])


def _parse_conjunct(text: str) -> Conjunct:
    if "->" in text:
        parts = text.split("->")
    else:
        parts = text.split("<")
    if len(parts) != 2:
        raise PredicateSyntaxError(
            "bad conjunct %r (expected 'term < term' or 'term -> term')" % text
        )
    return Conjunct(_parse_term(parts[0]), _parse_term(parts[1]))


def _parse_guard(text: str) -> Guard:
    match = _PROCESS_GUARD_RE.match(text)
    if match:
        left_role, left_var, op, right_role, right_var = match.groups()
        return ProcessGuard(
            left=(left_var, left_role),
            right=(right_var, right_role),
            equal=(op == "="),
        )
    match = _COLOR_GUARD_RE.match(text)
    if match:
        variable, op, color = match.groups()
        return ColorGuard(variable=variable, color=color, equal=(op == "="))
    match = _GROUP_GUARD_RE.match(text)
    if match:
        left, op, right = match.groups()
        return GroupGuard(left=left, right=right, equal=(op == "="))
    raise PredicateSyntaxError("bad guard %r" % text)


def parse_predicate(
    text: str, name: Optional[str] = None, distinct: bool = False
) -> ForbiddenPredicate:
    """Parse predicate text into a :class:`ForbiddenPredicate`."""
    if "::" in text:
        guard_text, body_text = text.split("::", 1)
        guards: Tuple[Guard, ...] = tuple(
            _parse_guard(part) for part in guard_text.split(",") if part.strip()
        )
    else:
        guards, body_text = (), text
    conjunct_texts = [part for part in body_text.split("&") if part.strip()]
    if not conjunct_texts:
        raise PredicateSyntaxError("predicate has no conjuncts: %r" % text)
    conjuncts = [_parse_conjunct(part) for part in conjunct_texts]
    return ForbiddenPredicate.build(
        conjuncts, guards=guards, name=name, distinct=distinct
    )


def format_predicate(predicate: ForbiddenPredicate) -> str:
    """Render back to DSL text (parse/format round-trips)."""
    body = " & ".join(
        "%s.%s < %s.%s"
        % (
            conjunct.left.variable,
            conjunct.left.kind.symbol,
            conjunct.right.variable,
            conjunct.right.kind.symbol,
        )
        for conjunct in predicate.conjuncts
    )
    if not predicate.guards:
        return body
    guards = ", ".join(_format_guard(guard) for guard in predicate.guards)
    return "%s :: %s" % (guards, body)


def _format_guard(guard: Guard) -> str:
    if isinstance(guard, ProcessGuard):
        op = "=" if guard.equal else "!="
        return "%s(%s) %s %s(%s)" % (
            guard.left[1],
            guard.left[0],
            op,
            guard.right[1],
            guard.right[0],
        )
    if isinstance(guard, ColorGuard):
        op = "=" if guard.equal else "!="
        return "color(%s) %s %s" % (guard.variable, op, guard.color)
    if isinstance(guard, GroupGuard):
        op = "=" if guard.equal else "!="
        return "group(%s) %s group(%s)" % (guard.left, op, guard.right)
    raise TypeError("unknown guard type %r" % type(guard))
