"""Predicate canonicalization and isomorphism.

Two predicates that differ only in variable names or conjunct order
denote the same specification; ``canonicalize`` rewrites a predicate into
a normal form (variables renamed ``v0, v1, ...`` by a minimal signature
ordering; conjuncts and guards sorted), and ``isomorphic`` tests equality
up to renaming by comparing normal forms.  Arities here are tiny, so the
canonical labelling simply minimizes over all variable permutations.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

from repro.predicates.ast import Conjunct, EventTerm, ForbiddenPredicate
from repro.predicates.guards import ColorGuard, GroupGuard, ProcessGuard


def _rename(predicate: ForbiddenPredicate, mapping: Dict[str, str]) -> Tuple:
    """A hashable signature of the predicate under a variable renaming."""
    conjuncts = sorted(
        (
            mapping[c.left.variable],
            c.left.kind.value,
            mapping[c.right.variable],
            c.right.kind.value,
        )
        for c in predicate.conjuncts
    )
    guards = []
    for guard in predicate.guards:
        if isinstance(guard, ProcessGuard):
            ends = sorted(
                [(mapping[guard.left[0]], guard.left[1]),
                 (mapping[guard.right[0]], guard.right[1])]
            )
            guards.append(("process", tuple(ends[0]), tuple(ends[1]), guard.equal))
        elif isinstance(guard, ColorGuard):
            guards.append(("color", mapping[guard.variable], guard.color, guard.equal))
        elif isinstance(guard, GroupGuard):
            ends = sorted([mapping[guard.left], mapping[guard.right]])
            guards.append(("group", ends[0], ends[1], guard.equal))
        else:  # pragma: no cover
            raise TypeError("unknown guard %r" % (guard,))
    return (tuple(conjuncts), tuple(sorted(guards)), predicate.distinct)


def canonical_signature(predicate: ForbiddenPredicate) -> Tuple:
    """The minimal signature over all variable permutations."""
    variables = predicate.variables
    fresh = ["v%d" % i for i in range(len(variables))]
    best = None
    for permutation in itertools.permutations(fresh):
        mapping = dict(zip(variables, permutation))
        signature = _rename(predicate, mapping)
        if best is None or signature < best:
            best = signature
    assert best is not None
    return best


def canonicalize(predicate: ForbiddenPredicate) -> ForbiddenPredicate:
    """The predicate rewritten with canonical names and sorted conjuncts."""
    conjuncts_sig, guards_sig, distinct = canonical_signature(predicate)
    from repro.events import EventKind

    conjuncts = [
        Conjunct(
            EventTerm(lv, EventKind(lk)), EventTerm(rv, EventKind(rk))
        )
        for lv, lk, rv, rk in conjuncts_sig
    ]
    guards = []
    for item in guards_sig:
        if item[0] == "process":
            guards.append(ProcessGuard(item[1], item[2], equal=item[3]))
        elif item[0] == "color":
            guards.append(ColorGuard(item[1], item[2], equal=item[3]))
        elif item[0] == "group":
            guards.append(GroupGuard(item[1], item[2], equal=item[3]))
    return ForbiddenPredicate.build(
        conjuncts, guards=guards, name=predicate.name, distinct=distinct
    )


def isomorphic(left: ForbiddenPredicate, right: ForbiddenPredicate) -> bool:
    """Equal up to variable renaming and conjunct/guard order."""
    if left.arity != right.arity or left.distinct != right.distinct:
        return False
    return canonical_signature(left) == canonical_signature(right)
