"""Append-only WAL segments: rotation, fsync batching, torn-tail reads.

A WAL directory holds numbered segment files (``wal-00000000.seg``,
``wal-00000001.seg``, ...).  :class:`SegmentWriter` appends encoded
records to the highest-numbered segment, batching ``flush``+``fsync``
every ``sync_every`` records and rotating to a fresh segment once the
current one would exceed ``max_segment_bytes``.  Every segment starts
with the record produced by ``header_factory`` (a META record in
practice) so each file is independently self-describing.

Readers tolerate exactly one kind of damage without complaint: a
*truncated final record*, the artifact a crash leaves behind when it
lands mid-``write``.  The torn tail is measured and dropped, never
replayed.  Mid-segment corruption (a failed checksum on a record that is
not the last one) means the file was damaged after the fact, and raising
is the honest move -- ``strict=True`` does that; the default salvages
the clean prefix, since a replay from a partial log is still a valid
(shorter) run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.wal.records import (
    UnknownWalVersion,
    WalCorrupt,
    WalRecord,
    WalTruncated,
    decode_record,
    encode_record,
)

__all__ = [
    "SEGMENT_NAME",
    "DEFAULT_MAX_SEGMENT_BYTES",
    "DEFAULT_SYNC_EVERY",
    "segment_paths",
    "read_segment",
    "read_log",
    "WalLog",
    "SegmentWriter",
]

SEGMENT_NAME = "wal-%08d.seg"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"

DEFAULT_MAX_SEGMENT_BYTES = 4 * 1024 * 1024
DEFAULT_SYNC_EVERY = 64


def segment_paths(directory: str) -> List[str]:
    """The directory's segment files, in log order."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    segments = [
        name
        for name in names
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)
    ]
    return [os.path.join(directory, name) for name in sorted(segments)]


def _segment_index(path: str) -> int:
    stem = os.path.basename(path)[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return -1


def read_segment(path: str, strict: bool = False) -> Tuple[List[WalRecord], int]:
    """Decode one segment; returns ``(records, tail_dropped_bytes)``.

    A truncated final record is always dropped (that is the crash
    artifact this format is designed around).  Other damage --
    mid-segment corruption or an unknown format version -- raises under
    ``strict=True`` and is treated like a torn tail otherwise, except
    that an unknown version on the *first* record always raises: that is
    not damage, it is a file this reader cannot speak.
    """
    with open(path, "rb") as handle:
        buffer = handle.read()
    records: List[WalRecord] = []
    offset = 0
    while offset < len(buffer):
        try:
            record, offset = decode_record(buffer, offset)
        except WalTruncated:
            return records, len(buffer) - offset
        except UnknownWalVersion:
            if strict or offset == 0:
                raise
            return records, len(buffer) - offset
        except WalCorrupt:
            if strict:
                raise
            return records, len(buffer) - offset
        records.append(record)
    return records, 0


@dataclass
class WalLog:
    """All records in a WAL directory, plus what the reader discarded."""

    records: List[WalRecord] = field(default_factory=list)
    segments: List[str] = field(default_factory=list)
    tail_dropped: int = 0


def read_log(directory: str, strict: bool = False) -> WalLog:
    """Read every segment in ``directory`` into one ordered record list."""
    log = WalLog()
    for path in segment_paths(directory):
        records, dropped = read_segment(path, strict=strict)
        log.records.extend(records)
        log.segments.append(path)
        log.tail_dropped += dropped
    return log


class SegmentWriter:
    """Append-only writer with count-based fsync batching and rotation."""

    def __init__(
        self,
        directory: str,
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
        sync_every: int = DEFAULT_SYNC_EVERY,
        fsync: bool = True,
        header_factory: Optional[Callable[[int], WalRecord]] = None,
    ):
        if max_segment_bytes <= 0:
            raise ValueError("max_segment_bytes must be positive")
        if sync_every <= 0:
            raise ValueError("sync_every must be positive")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.sync_every = sync_every
        self.fsync = fsync
        self.header_factory = header_factory
        os.makedirs(directory, exist_ok=True)
        existing = segment_paths(directory)
        # Never append into an old segment (its tail may be torn);
        # continue the numbering with a fresh file instead.
        self.segment_index = (
            max(_segment_index(path) for path in existing) + 1 if existing else 0
        )
        self._handle = None
        self._segment_bytes = 0
        self._unsynced = 0
        self.records_written = 0
        self.syncs = 0
        self.rotations = 0
        self.closed = False

    # -- lifecycle ------------------------------------------------------------

    def _open_segment(self) -> None:
        path = os.path.join(self.directory, SEGMENT_NAME % self.segment_index)
        # Unbuffered: every append is visible to same-machine readers
        # immediately (the WAL-before-ack discipline crash recovery
        # relies on); what ``sync_every`` batches is the *fsync*, i.e.
        # only a power failure can cost a torn tail.
        self._handle = open(path, "ab", buffering=0)
        self._segment_bytes = 0
        if self.header_factory is not None:
            header = encode_record(self.header_factory(self.segment_index))
            self._handle.write(header)
            self._segment_bytes += len(header)

    def _rotate(self) -> None:
        self.sync()
        self._handle.close()
        self._handle = None
        self.segment_index += 1
        self.rotations += 1

    def append(self, record: WalRecord) -> None:
        """Append one record, rotating and sync-batching as configured."""
        if self.closed:
            raise RuntimeError("append() on a closed SegmentWriter")
        encoded = encode_record(record)
        if self._handle is not None and (
            self._segment_bytes + len(encoded) > self.max_segment_bytes
        ):
            self._rotate()
        if self._handle is None:
            self._open_segment()
        self._handle.write(encoded)
        self._segment_bytes += len(encoded)
        self.records_written += 1
        self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.sync()

    def sync(self) -> None:
        """Force the segment to stable storage (fsync, if enabled)."""
        if self._handle is None:
            return
        if self.fsync:
            os.fsync(self._handle.fileno())
        if self._unsynced:
            self.syncs += 1
        self._unsynced = 0

    def close(self) -> None:
        """Final sync and close; idempotent."""
        if self.closed:
            return
        self.sync()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.closed = True
