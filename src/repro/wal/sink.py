"""WalSink: the append-only hook the Simulator and NetHost write through.

One sink owns one WAL directory.  It taps three producer surfaces and
funnels everything into a single :class:`~repro.wal.segment.SegmentWriter`:

- a :class:`~repro.simulation.trace.Trace` tap -- every trace record
  becomes an EVENT record (the run object the SpecMonitor replays);
- a :class:`~repro.simulation.host.ProtocolHost` ``input_listener`` --
  every invoke and packet arrival becomes an INPUT record in processing
  order (the redo log crash recovery replays);
- a :class:`~repro.obs.bus.Bus` subscription over the fault, retx and
  timer probes (the recovery history a replayed run carries along).

Producers differ only in which taps they attach: the Simulator attaches
all hosts plus the shared trace; a NetHost attaches its own host and
trace (its WAL is a per-process segment directory); an observer-side
recorder attaches nothing and calls :meth:`on_trace` directly from the
merged live stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.events import Message
from repro.net import codec
from repro.simulation.trace import TraceRecord
from repro.wal import records as rec
from repro.wal.records import WalRecord
from repro.wal.segment import (
    DEFAULT_MAX_SEGMENT_BYTES,
    DEFAULT_SYNC_EVERY,
    SegmentWriter,
    read_log,
)

__all__ = ["WalSink"]

#: Bus probes mirrored into the WAL, mapped to their record kind.
_PROBE_KINDS = {
    "fault.drop": rec.FAULT,
    "fault.dup": rec.FAULT,
    "fault.partition": rec.FAULT,
    "fault.spike": rec.FAULT,
    "crash": rec.FAULT,
    "restart": rec.FAULT,
    "retx.send": rec.RETX,
    "retx.ack": rec.RETX,
    "retx.dup": rec.RETX,
    "timer.fire": rec.TIMER,
}


class WalSink:
    """Write-ahead log sink: one directory, one writer, many taps."""

    def __init__(
        self,
        directory: str,
        *,
        meta: Optional[Dict[str, Any]] = None,
        sync_every: int = DEFAULT_SYNC_EVERY,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
        fsync: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.directory = directory
        self.meta = dict(meta or {})
        self._clock = clock or (lambda: 0.0)
        #: Optional vector-clock lookup (the NetHost points this at its
        #: flight recorder) so EVENT records carry causal timestamps.
        self.vc_for: Optional[Callable[[TraceRecord], Optional[Dict[int, int]]]] = None
        self.writer = SegmentWriter(
            directory,
            max_segment_bytes=max_segment_bytes,
            sync_every=sync_every,
            fsync=fsync,
            header_factory=self._header,
        )
        self._unsubscribes: List[Callable[[], None]] = []
        self.closed = False

    def _header(self, segment_index: int) -> WalRecord:
        fields = dict(self.meta)
        fields["segment"] = segment_index
        return rec.meta_record(fields)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Use ``clock`` for record timestamps that lack their own."""
        self._clock = clock

    # -- taps -----------------------------------------------------------------

    def on_trace(self, record: TraceRecord, message: Message) -> None:
        """Trace tap: one EVENT record per trace record."""
        vc = self.vc_for(record) if self.vc_for is not None else None
        self.writer.append(rec.event_record(record, message, vc=vc))

    def attach_trace(self, trace) -> None:
        """Mirror every future record of ``trace`` into the log."""
        trace.attach_tap(self.on_trace)

    def input_listener(self, process: int, op: str, payload: Any) -> None:
        """Host tap: one INPUT record per invoke / packet arrival."""
        t = self._clock()
        if op == "invoke":
            self.writer.append(rec.invoke_record(t, process, payload))
        else:
            self.writer.append(rec.packet_record(t, process, payload))

    def attach_host(self, host) -> None:
        """Log ``host``'s inputs (its ``input_listener`` hook)."""
        host.input_listener = self.input_listener

    def _on_probe(self, event) -> None:
        kind = _PROBE_KINDS[event.probe]
        data = dict(event.data)
        try:
            codec.encode_value(data)
        except codec.CodecError:
            # Probe payloads are free-form; degrade to repr rather than
            # lose the record.
            data = {key: repr(value) for key, value in data.items()}
        process = data.get("process", -1)
        try:
            process = int(process)
        except (TypeError, ValueError):
            process = -1
        self.writer.append(
            rec.probe_record(kind, event.time, process, event.probe, data)
        )

    def attach_bus(self, bus) -> None:
        """Mirror the fault/retx/timer probe streams into the log."""
        for probe in sorted(_PROBE_KINDS):
            self._unsubscribes.append(bus.subscribe(probe, self._on_probe))

    # -- explicit records -----------------------------------------------------

    def checkpoint(self, **fields: Any) -> None:
        """Write a CHECKPOINT record and force it to disk."""
        self.writer.append(rec.checkpoint_record(self._clock(), fields))
        self.writer.sync()

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        """Force buffered records to disk."""
        self.writer.sync()

    def reload(self):
        """Sync, then read the directory back (testing/inspection aid)."""
        self.sync()
        return read_log(self.directory)

    def close(self) -> None:
        """Unsubscribe probe taps, final sync, close the writer."""
        if self.closed:
            return
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []
        self.writer.close()
        self.closed = True
