"""repro.wal -- durable deterministic replay log.

A write-ahead event log shared by the Simulator and the NetHost: stable
content-addressed message ids, a versioned length-prefixed on-disk
record format (the wire codec's tagged value encoding), append-only
segment files with fsync batching and rotation, and three consumers on
top -- crash recovery by redo (:mod:`repro.wal.recovery`), bit-identical
record/replay into the SpecMonitor and prefix-seeded model checking
(:mod:`repro.wal.replay`), and resumable soak checkpoints
(:class:`~repro.wal.sink.WalSink`, CHECKPOINT records).
"""

from repro.wal.records import (
    CHECKPOINT,
    EVENT,
    FAULT,
    INPUT,
    META,
    RETX,
    TIMER,
    WAL_VERSION,
    UnknownWalVersion,
    WalCorrupt,
    WalError,
    WalRecord,
    WalTruncated,
    content_id,
    decode_record,
    encode_record,
)
from repro.wal.recovery import RecoveryReport, rebuild_protocol, replay_into_host
from repro.wal.replay import (
    ReplayResult,
    delivery_order,
    explore_from_log,
    mc_prefix_from_records,
    replay_log,
    resolve_spec_name,
    trace_from_records,
    workload_from_records,
)
from repro.wal.segment import SegmentWriter, WalLog, read_log, read_segment
from repro.wal.sink import WalSink

__all__ = [
    "WAL_VERSION",
    "META",
    "EVENT",
    "INPUT",
    "FAULT",
    "RETX",
    "TIMER",
    "CHECKPOINT",
    "WalError",
    "WalTruncated",
    "WalCorrupt",
    "UnknownWalVersion",
    "WalRecord",
    "content_id",
    "encode_record",
    "decode_record",
    "SegmentWriter",
    "WalLog",
    "read_segment",
    "read_log",
    "WalSink",
    "RecoveryReport",
    "replay_into_host",
    "rebuild_protocol",
    "ReplayResult",
    "trace_from_records",
    "replay_log",
    "resolve_spec_name",
    "delivery_order",
    "workload_from_records",
    "mc_prefix_from_records",
    "explore_from_log",
]
