"""WAL record model: kinds, bodies, and content-addressed message ids.

One WAL record is a ``(kind, body)`` pair serialized with the wire
codec's tagged value encoding (:func:`repro.net.codec.encode_value`) so
protocol tags, vector timestamps and control payloads survive the disk
round trip exactly like they survive a socket.  The on-disk framing is
versioned, length-prefixed and checksummed::

    +----------------+---------+------+-------------+-------------------+
    | length (4B BE) | version | kind | crc32 (4B)  | body (JSON utf-8) |
    +----------------+---------+------+-------------+-------------------+

``length`` covers version + kind + crc + body; ``crc32`` covers the body
bytes only.  Decoding is strict about corruption (:class:`WalCorrupt`)
but distinguishes a *truncated* record (:class:`WalTruncated`) because a
torn final write is the expected crash artifact -- segment readers drop
the torn tail instead of refusing to replay (see
:mod:`repro.wal.segment`).

Record kinds
------------

``META``
    run metadata, written at the head of every segment (run id, process,
    protocol, format version) so a single segment file is self-describing.
``EVENT``
    one trace record (the paper's ``x.s*``/``x.s``/``x.r*``/``x.r``),
    with the message inlined and content-addressed.
``INPUT``
    one redo-log input: a user invoke or a packet arrival, in processing
    order.  Deterministic protocols reconstruct their durable state by
    replaying exactly these (:mod:`repro.wal.recovery`).
``FAULT`` / ``RETX`` / ``TIMER``
    the fault-injection, retransmission, and timer-fire probe streams,
    so a replayed run carries its recovery history.
``CHECKPOINT``
    a load-generator progress marker (resumable soak runs).
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from repro.events import Event, EventKind, Message
from repro.net import codec
from repro.simulation.network import Packet
from repro.simulation.trace import TraceRecord

__all__ = [
    "WAL_VERSION",
    "META",
    "EVENT",
    "INPUT",
    "FAULT",
    "RETX",
    "TIMER",
    "CHECKPOINT",
    "RECORD_KINDS",
    "KIND_NAMES",
    "WalError",
    "WalTruncated",
    "WalCorrupt",
    "UnknownWalVersion",
    "WalRecord",
    "content_id",
    "encode_record",
    "decode_record",
    "meta_record",
    "event_record",
    "event_from_record",
    "invoke_record",
    "packet_record",
    "input_from_record",
    "probe_record",
    "checkpoint_record",
]

#: On-disk format version; bump on any incompatible framing/body change.
WAL_VERSION = 1

#: Upper bound on one record's (version + kind + crc + body) size.
MAX_RECORD_BYTES = 4 * 1024 * 1024

# -- record kinds -------------------------------------------------------------

META = 1  # run/segment metadata (head of every segment)
EVENT = 2  # one trace record: {t, p, k, m, cid[, vc]}
INPUT = 3  # one redo input: invoke or packet arrival, processing order
FAULT = 4  # fault.* / crash / restart probe record
RETX = 5  # retx.* probe record (ARQ recovery traffic)
TIMER = 6  # a protocol timer fired
CHECKPOINT = 7  # load-generator progress marker (soak resume)

RECORD_KINDS = frozenset({META, EVENT, INPUT, FAULT, RETX, TIMER, CHECKPOINT})

KIND_NAMES = {
    META: "META",
    EVENT: "EVENT",
    INPUT: "INPUT",
    FAULT: "FAULT",
    RETX: "RETX",
    TIMER: "TIMER",
    CHECKPOINT: "CHECKPOINT",
}

_LENGTH = struct.Struct("!I")
_HEAD = struct.Struct("!BBI")  # version, kind, crc32(body)

_EVENT_KIND_TO_NAME = {
    EventKind.INVOKE: "invoke",
    EventKind.SEND: "send",
    EventKind.RECEIVE: "receive",
    EventKind.DELIVER: "deliver",
}
_NAME_TO_EVENT_KIND = {name: kind for kind, name in _EVENT_KIND_TO_NAME.items()}


# -- errors -------------------------------------------------------------------


class WalError(ValueError):
    """Base error for WAL decoding problems."""


class WalTruncated(WalError):
    """The buffer ends inside a record (the torn-final-write artifact)."""


class WalCorrupt(WalError):
    """A record is structurally invalid or fails its checksum."""


class UnknownWalVersion(WalError):
    """The record claims a WAL format version this reader cannot parse."""


# -- the record ---------------------------------------------------------------


@dataclass(frozen=True)
class WalRecord:
    """One durable record: a kind and a JSON-safe body."""

    kind: int
    body: Dict[str, Any]

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, str(self.kind))


def _content_id_uncached(message: Message) -> str:
    canonical = json.dumps(
        codec.message_to_wire(message), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


_content_id_cached = lru_cache(maxsize=8192)(_content_id_uncached)


def content_id(message: Message) -> str:
    """A stable, content-addressed id for ``message``.

    The hash covers the canonical JSON of the message's wire form
    (sorted keys, no whitespace), so the same message content yields the
    same id in every process, every run, and every replay -- the WAL's
    cross-host join key.  Cached when the message is hashable: one
    message is logged at up to four events (invoke/send/receive/
    deliver), and messages are frozen, so equal content always means an
    equal id.  A message whose payload is an unhashable container takes
    the uncached path.
    """
    try:
        return _content_id_cached(message)
    except TypeError:
        return _content_id_uncached(message)


# -- framing ------------------------------------------------------------------


def encode_record(record: WalRecord) -> bytes:
    """Serialize one record with length prefix, version, kind and crc."""
    if record.kind not in RECORD_KINDS:
        raise WalError("unknown WAL record kind %r" % (record.kind,))
    # No sort_keys: record bodies are built with deterministic insertion
    # order, so the bytes are already reproducible; only content_id needs
    # the fully canonical (sorted) form.
    body = json.dumps(
        codec.encode_value(record.body), separators=(",", ":")
    ).encode("utf-8")
    size = _HEAD.size + len(body)
    if size > MAX_RECORD_BYTES:
        raise WalError("record of %d bytes exceeds the 4 MiB bound" % size)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _LENGTH.pack(size) + _HEAD.pack(WAL_VERSION, record.kind, crc) + body


def decode_record(buffer: bytes, offset: int = 0) -> Tuple[WalRecord, int]:
    """Decode the record at ``offset``; returns ``(record, next_offset)``.

    Raises :class:`WalTruncated` if the buffer ends mid-record,
    :class:`UnknownWalVersion` on a format version mismatch, and
    :class:`WalCorrupt` on anything structurally wrong (bad kind, crc
    mismatch, malformed JSON).
    """
    end = len(buffer)
    if offset + _LENGTH.size > end:
        raise WalTruncated(
            "record length prefix truncated at offset %d" % offset
        )
    (size,) = _LENGTH.unpack_from(buffer, offset)
    if size < _HEAD.size or size > MAX_RECORD_BYTES:
        raise WalCorrupt("implausible record size %d at offset %d" % (size, offset))
    start = offset + _LENGTH.size
    if start + size > end:
        raise WalTruncated(
            "record of %d bytes truncated at offset %d (%d available)"
            % (size, offset, end - start)
        )
    version, kind, crc = _HEAD.unpack_from(buffer, start)
    if version != WAL_VERSION:
        raise UnknownWalVersion(
            "WAL version %d (this reader speaks %d)" % (version, WAL_VERSION)
        )
    if kind not in RECORD_KINDS:
        raise WalCorrupt("unknown record kind %d at offset %d" % (kind, offset))
    body_bytes = buffer[start + _HEAD.size : start + size]
    if zlib.crc32(body_bytes) & 0xFFFFFFFF != crc:
        raise WalCorrupt("crc mismatch at offset %d" % offset)
    try:
        body = codec.decode_value(json.loads(body_bytes.decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalCorrupt("malformed body at offset %d: %s" % (offset, exc)) from exc
    if not isinstance(body, dict):
        raise WalCorrupt("record body at offset %d is not an object" % offset)
    return WalRecord(kind=kind, body=body), start + size


# -- constructors / accessors -------------------------------------------------


def meta_record(fields: Dict[str, Any]) -> WalRecord:
    """A segment-head META record (``format`` stamped automatically)."""
    body = dict(fields)
    body.setdefault("format", WAL_VERSION)
    return WalRecord(kind=META, body=body)


def event_record(
    record: TraceRecord,
    message: Message,
    vc: Optional[Dict[int, int]] = None,
) -> WalRecord:
    """One trace record as an EVENT body (message inline + content id)."""
    body: Dict[str, Any] = {
        "t": record.time,
        "p": record.process,
        "k": _EVENT_KIND_TO_NAME[record.event.kind],
        "m": codec.message_to_wire(message),
        "cid": content_id(message),
    }
    if vc:
        body["vc"] = dict(vc)
    return WalRecord(kind=EVENT, body=body)


def event_from_record(
    body: Dict[str, Any], verify: bool = True
) -> Tuple[float, int, Event, Message]:
    """Strict inverse of :func:`event_record` (content id re-verified)."""
    try:
        kind = _NAME_TO_EVENT_KIND[body["k"]]
        message = codec.message_from_wire(body["m"])
        t, p = float(body["t"]), int(body["p"])
    except (KeyError, TypeError, ValueError, codec.CodecError) as exc:
        raise WalCorrupt("bad EVENT body %r: %s" % (body, exc)) from exc
    if verify:
        expected = body.get("cid")
        if expected is not None and expected != content_id(message):
            raise WalCorrupt(
                "content id mismatch for message %r (stored %s)"
                % (message.id, expected)
            )
    return t, p, Event(message.id, kind), message


def invoke_record(t: float, process: int, message: Message) -> WalRecord:
    """A redo input: the user invoked ``message`` at ``process``."""
    return WalRecord(
        kind=INPUT,
        body={
            "t": t,
            "p": process,
            "op": "invoke",
            "m": codec.message_to_wire(message),
            "cid": content_id(message),
        },
    )


def packet_record(t: float, process: int, packet: Packet) -> WalRecord:
    """A redo input: ``packet`` arrived at ``process``."""
    body: Dict[str, Any] = {
        "t": t,
        "p": process,
        "op": "packet",
        "src": packet.src,
        "dst": packet.dst,
        "kind": packet.kind,
        "sent": packet.send_time,
        "uid": packet.uid,
        "cs": packet.channel_seq,
    }
    if packet.is_user and packet.message is not None:
        body["m"] = codec.message_to_wire(packet.message)
        body["cid"] = content_id(packet.message)
        body["tag"] = packet.tag
    else:
        body["payload"] = packet.payload
    return WalRecord(kind=INPUT, body=body)


def input_from_record(body: Dict[str, Any]) -> Tuple[str, float, int, Any]:
    """Decode an INPUT body to ``(op, t, process, payload)``.

    ``payload`` is the :class:`~repro.events.Message` for an invoke and
    the reconstructed :class:`~repro.simulation.network.Packet` for an
    arrival.
    """
    try:
        op = body["op"]
        t, process = float(body["t"]), int(body["p"])
        if op == "invoke":
            return op, t, process, codec.message_from_wire(body["m"])
        if op != "packet":
            raise WalCorrupt("unknown input op %r" % (op,))
        message = None
        if "m" in body:
            message = codec.message_from_wire(body["m"])
        packet = Packet(
            src=int(body["src"]),
            dst=int(body["dst"]),
            kind=body["kind"],
            message=message,
            tag=body.get("tag"),
            payload=body.get("payload"),
            send_time=float(body.get("sent", 0.0)),
            uid=int(body.get("uid", 0)),
            channel_seq=int(body.get("cs", 0)),
        )
        return op, t, process, packet
    except WalCorrupt:
        raise
    except (KeyError, TypeError, ValueError, codec.CodecError) as exc:
        raise WalCorrupt("bad INPUT body %r: %s" % (body, exc)) from exc


def probe_record(
    kind: int, t: float, process: int, probe: str, data: Dict[str, Any]
) -> WalRecord:
    """A FAULT/RETX/TIMER record taped from a bus probe."""
    if kind not in (FAULT, RETX, TIMER):
        raise WalError("probe records must be FAULT, RETX or TIMER")
    return WalRecord(
        kind=kind, body={"t": t, "p": process, "probe": probe, "data": dict(data)}
    )


def checkpoint_record(t: float, fields: Dict[str, Any]) -> WalRecord:
    """A load-generator CHECKPOINT (progress marker for soak resume)."""
    body = dict(fields)
    body["t"] = t
    return WalRecord(kind=CHECKPOINT, body=body)
