"""Replay: turn a WAL directory back into a first-class run object.

A recorded run replays three ways:

- :func:`replay_log` rebuilds the :class:`~repro.simulation.trace.Trace`
  from the EVENT stream and drives it through the incremental
  :class:`~repro.verification.engine.monitor.SpecMonitor` -- the same
  engine, the same verdict, the same violating assignment as the live
  run, bit for bit.
- :func:`delivery_order` projects the delivery sequence (the paper's
  user-view order) for determinism comparisons.
- :func:`mc_prefix_from_records` + :func:`explore_from_log` hand the
  recorded run to the model checker as a fixed schedule prefix, so
  counterexample search continues *from the recorded state* instead of
  from scratch.

The mc projection is only sound for protocols that send no control
packets (the tagged/tagless catalogue half): the explorer keys
deliveries by per-channel transmission index, and control traffic --
invisible to the trace -- would shift those indexes.
:func:`explore_from_log` refuses the rest loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.events import DELIVER, INVOKE, RECEIVE, SEND
from repro.simulation.trace import Trace
from repro.simulation.workloads import SendRequest, Workload
from repro.wal import records as rec
from repro.wal.records import WalCorrupt, WalRecord, event_from_record
from repro.wal.segment import read_log

__all__ = [
    "ReplayResult",
    "resolve_spec_name",
    "trace_from_records",
    "replay_log",
    "delivery_order",
    "workload_from_records",
    "mc_prefix_from_records",
    "explore_from_log",
]


def resolve_spec_name(text: str):
    """A recorded ``meta["spec"]`` back to a live Specification.

    Tries the predicate catalogue by entry name, then by the entry's own
    specification name (they differ for a couple of aliases), then falls
    back to parsing the text as predicate DSL.  Returns ``None`` when
    nothing matches -- replay then runs unmonitored rather than failing.
    """
    from repro.predicates.catalog import catalog_by_name

    by_name = catalog_by_name()
    if text in by_name:
        return by_name[text].specification
    for entry in by_name.values():
        if entry.specification.name == text:
            return entry.specification
    try:
        from repro.predicates.dsl import parse_predicate
        from repro.predicates.spec import Specification

        predicate = parse_predicate(text, name="recorded", distinct=False)
        return Specification(name="recorded", predicates=(predicate,))
    except Exception:
        return None


def _meta_of(records: List[WalRecord]) -> Dict[str, Any]:
    for record in records:
        if record.kind == rec.META:
            return dict(record.body)
    return {}


def _infer_processes(records: List[WalRecord]) -> int:
    highest = -1
    for record in records:
        if record.kind != rec.EVENT:
            continue
        _t, process, _event, message = event_from_record(record.body, verify=False)
        highest = max(highest, process, message.sender, message.receiver)
    return highest + 1


def trace_from_records(
    records: List[WalRecord], n_processes: int, verify: bool = True
) -> Trace:
    """Rebuild the trace from the EVENT stream, content ids re-verified.

    Record order in the log *is* trace order: every EVENT was appended by
    the trace tap at record time, so replaying them through a fresh
    :class:`Trace` reproduces the identical record sequence (and the
    trace re-checks the event preconditions as it goes)."""
    trace = Trace(n_processes)
    for record in records:
        if record.kind != rec.EVENT:
            continue
        t, process, event, message = event_from_record(record.body, verify=verify)
        trace.register_message(message)
        trace.record(t, process, event)
    return trace


@dataclass
class ReplayResult:
    """One replayed run: its trace, metadata, and monitor verdict."""

    trace: Trace
    meta: Dict[str, Any] = field(default_factory=dict)
    violation: Optional[Any] = None
    tail_dropped: int = 0
    segments: int = 0

    @property
    def clean(self) -> bool:
        return self.violation is None


def replay_log(directory: str, spec=None) -> ReplayResult:
    """Re-execute a recorded run into the incremental SpecMonitor.

    With ``spec=None`` the spec is resolved from the log's own META
    record (the ``spec`` field names a catalog entry); pass a
    :class:`~repro.predicates.Specification` to override.  Returns the
    rebuilt trace plus the monitor's verdict -- identical to the live
    run's, because both consumed the same records in the same order.
    """
    log = read_log(directory)
    if not log.segments:
        raise FileNotFoundError("no WAL segments in %r" % directory)
    meta = _meta_of(log.records)
    n_processes = int(meta.get("processes") or _infer_processes(log.records))
    trace = trace_from_records(log.records, n_processes)
    violation = None
    if spec is None and meta.get("spec"):
        spec = resolve_spec_name(str(meta["spec"]))
    if spec is not None:
        violation = _verify_trace(trace, spec)
    return ReplayResult(
        trace=trace,
        meta=meta,
        violation=violation,
        tail_dropped=log.tail_dropped,
        segments=len(log.segments),
    )


#: Largest family member the incremental monitor searches during a
#: replay -- the same cap :data:`repro.net.cluster.LIVE_FAMILY_ARITY`
#: applies live, and for the same reason: the anchored search on a
#: logically-synchronous crown family is super-quadratic in the trace.
REPLAY_FAMILY_ARITY = 2


def _verify_trace(trace: Trace, spec) -> Optional[Any]:
    """The LiveObserver's two-step verdict, replayed offline.

    Monitor incrementally with the family search capped, then close the
    completeness gap with the spec's exact polynomial membership oracle
    over the full trace.  Verdicts therefore match the live observer's
    exactly -- including which step flagged the run.
    """
    import dataclasses

    from repro.verification.engine import SpecMonitor

    check_spec = spec
    needs_oracle = False
    cap = getattr(spec, "family_arity_cap", None)
    if (
        getattr(spec, "families", ())
        and getattr(spec, "oracle", None) is not None
        and (cap is None or cap > REPLAY_FAMILY_ARITY)
    ):
        check_spec = dataclasses.replace(
            spec, family_arity_cap=REPLAY_FAMILY_ARITY
        )
        needs_oracle = True
    violation = SpecMonitor(check_spec).advance(trace)
    if violation is None and needs_oracle and trace.record_count:
        run = trace.to_system_run().users_view()
        if not spec.admits(run):
            violation = (
                "membership oracle rejected the replayed run (spec %s)"
                % (getattr(spec, "name", spec),)
            )
    return violation


def delivery_order(trace: Trace) -> List[Tuple[int, str]]:
    """The run's delivery sequence: ``(process, message_id)`` pairs in
    trace order -- the bit-exact determinism comparand."""
    return [
        (record.process, record.event.message_id)
        for record in trace.records()
        if record.event.kind is DELIVER
    ]


def workload_from_records(
    records: List[WalRecord], n_processes: Optional[int] = None
) -> Workload:
    """Reconstruct the request script from the INVOKE events.

    Ids are canonicalized to the workload convention (``m1``, ``m2``,
    ... in invoke order); colour/group/payload survive, times become the
    invoke index (the explorer ignores them, determinism prefers them
    stable)."""
    if n_processes is None:
        meta = _meta_of(records)
        n_processes = int(meta.get("processes") or _infer_processes(records))
    requests = []
    for record in records:
        if record.kind != rec.EVENT:
            continue
        _t, _process, event, message = event_from_record(record.body, verify=False)
        if event.kind is not INVOKE:
            continue
        requests.append(
            SendRequest(
                time=float(len(requests)),
                sender=message.sender,
                receiver=message.receiver,
                color=message.color,
                group=message.group,
                payload=message.payload,
            )
        )
    return Workload(
        name="replayed", n_processes=n_processes, requests=tuple(requests)
    )


def mc_prefix_from_records(records: List[WalRecord]) -> List[Tuple]:
    """Project the recorded run onto explorer transition keys.

    Walks the EVENT stream once: each invoke becomes
    ``("invoke", sender, i)`` with ``i`` the global invoke index (the
    workload position :func:`workload_from_records` assigns), each send
    claims the next transmission slot on its ``(src, dst)`` channel, and
    each receive becomes ``("deliver", src, dst, channel_seq)`` for the
    slot its message claimed.  Valid only when user packets are the only
    channel traffic (see the module docstring).
    """
    prefix: List[Tuple] = []
    invoke_index: Dict[str, int] = {}
    channel_next: Dict[Tuple[int, int], int] = {}
    seq_of: Dict[str, int] = {}
    for record in records:
        if record.kind != rec.EVENT:
            continue
        _t, process, event, message = event_from_record(record.body, verify=False)
        kind = event.kind
        if kind is INVOKE:
            index = len(invoke_index)
            invoke_index[message.id] = index
            prefix.append(("invoke", message.sender, index))
        elif kind is SEND:
            channel = (process, message.receiver)
            seq = channel_next.get(channel, 0)
            channel_next[channel] = seq + 1
            seq_of[message.id] = seq
        elif kind is RECEIVE:
            if message.id not in seq_of:
                raise WalCorrupt(
                    "receive of %r precedes its send in the log" % message.id
                )
            prefix.append(
                ("deliver", message.sender, process, seq_of[message.id])
            )
    return prefix


def explore_from_log(directory: str, spec=None, **options):
    """Model-check onward from a recorded run's final state.

    Reads the log, rebuilds the workload and the schedule prefix, and
    hands both to :func:`repro.mc.explorer.check_protocol` with the
    protocol named in the META record.  The explorer replays the prefix
    as a fixed stem and explores only its continuations -- counterexample
    search seeded from a production state.
    """
    log = read_log(directory)
    if not log.segments:
        raise FileNotFoundError("no WAL segments in %r" % directory)
    meta = _meta_of(log.records)
    protocol = meta.get("protocol")
    if not protocol:
        raise ValueError(
            "the log's META record names no protocol; cannot re-explore"
        )
    from repro.protocols.registry import cached_catalogue

    entry = cached_catalogue().get(protocol)
    if entry is not None and entry.uses_control_messages:
        raise ValueError(
            "protocol %r sends control packets; the trace cannot fix "
            "their channel slots, so prefix-seeded exploration is only "
            "supported for tag-only protocols" % protocol
        )
    workload = workload_from_records(log.records)
    prefix = mc_prefix_from_records(log.records)
    from repro.mc.explorer import check_protocol

    return check_protocol(
        protocol, workload, spec=spec, prefix=prefix, **options
    )
