"""Crash recovery by redo: rebuild protocol state from logged inputs.

The protocols in this repository are deterministic state machines over
their inputs -- user invokes, packet arrivals, and (volatile) timers.
That makes the WAL's INPUT stream a classical redo log: feed the same
inputs in the same order to a fresh instance and the durable state
(per-destination ARQ sequence numbers, reassembly buffers, protocol
tags, delivered sets) comes back exactly, with no checkpoint-at-crash
magic.  Timers are *not* replayed -- they are volatile by the fault
model's definition, and ``on_restart`` re-arms whatever recovery needs.

Two replay shapes:

- :func:`replay_into_host` pushes the inputs back through a live
  :class:`~repro.simulation.host.ProtocolHost` with outbound transport
  and timers suppressed.  The host's own bookkeeping (trace, dedup sets,
  receive times, stats) rebuilds alongside the protocol -- this is what
  a restarted :class:`~repro.net.host.NetHost` uses.
- :func:`rebuild_protocol` replays into a *fresh protocol instance*
  behind a null context, mirroring the host's dedup semantics.  The sim
  fault injector uses it to give crash events honest durability
  semantics (the WAL, not a crash-instant snapshot, is the authority).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

from repro.wal import records as rec
from repro.wal.records import WalRecord, input_from_record

__all__ = ["RecoveryReport", "replay_into_host", "rebuild_protocol"]


class _ReplayClock:
    """Stands in for the Simulator/WallClock during replay: ``now`` is
    whatever the current input record says, and timers never fire."""

    def __init__(self) -> None:
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Suppressed: replay feeds recorded inputs only; ``on_restart``
        re-arms the timers recovery actually needs."""


class _NullTransport:
    """A transport that drops every packet (replay must not re-send)."""

    def transmit(self, network, packet) -> None:
        pass


class _NullContext:
    """A :class:`~repro.simulation.host.HostContext` stand-in whose
    services all no-op: state rebuilds inside the protocol, nothing
    leaves it."""

    def __init__(self, process_id: int, n_processes: int, clock: _ReplayClock):
        self.process_id = process_id
        self.n_processes = n_processes
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock.now

    def release(self, message, tag=None) -> None:
        pass

    def deliver(self, message) -> None:
        pass

    def send_control(self, dst, payload) -> None:
        pass

    def retransmit(self, message, tag=None) -> None:
        pass

    def retransmit_control(self, dst, payload) -> None:
        pass

    def schedule(self, delay, action) -> None:
        pass

    def emit(self, probe, **data) -> None:
        pass


@dataclass
class RecoveryReport:
    """What a replay processed (and what it could not)."""

    inputs: int = 0
    invokes: int = 0
    arrivals: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors


def _iter_inputs(records: Iterable[WalRecord], process_id: Optional[int]):
    for record in records:
        if record.kind != rec.INPUT:
            continue
        op, t, process, payload = input_from_record(record.body)
        if process_id is not None and process != process_id:
            continue
        yield op, t, process, payload


def replay_into_host(
    host,
    records: Iterable[WalRecord],
    *,
    process_id: Optional[int] = None,
    start: bool = True,
) -> RecoveryReport:
    """Replay logged inputs through a live host, side effects suppressed.

    The host's clock and its network's transport are swapped for replay
    stand-ins (and restored on exit), so the protocol re-executes every
    invoke and arrival without transmitting anything or arming a timer.
    With ``start=True`` the protocol's ``on_start`` hook runs first, as
    it did at the original boot.  Per-input exceptions are collected in
    the report, not raised: a half-recovered host is still better than a
    fresh one.
    """
    clock = _ReplayClock()
    network = host.network
    saved_host_sim = host.sim
    saved_net_sim = network.sim
    saved_transport = network.transport
    host.sim = clock
    network.sim = clock
    network.transport = _NullTransport()
    report = RecoveryReport()
    try:
        if start:
            host.protocol.on_start(host.ctx)
        for op, t, process, payload in _iter_inputs(records, process_id):
            clock.now = t
            report.inputs += 1
            try:
                if op == "invoke":
                    report.invokes += 1
                    host.invoke(payload)
                else:
                    report.arrivals += 1
                    host._on_packet(payload)
            except Exception as exc:  # noqa: BLE001 - collected, not fatal
                report.errors.append(
                    "%s input %d (%s at t=%s): %s"
                    % (type(exc).__name__, report.inputs, op, t, exc)
                )
    finally:
        host.sim = saved_host_sim
        network.sim = saved_net_sim
        network.transport = saved_transport
    return report


def rebuild_protocol(
    protocol_factory: Callable[[int, int], Any],
    process_id: int,
    n_processes: int,
    records: Iterable[WalRecord],
) -> Any:
    """A fresh protocol instance fast-forwarded through the logged inputs.

    Mirrors the host's feeding discipline exactly: first receipt of a
    user message goes to ``on_user_message``, later copies to
    ``on_duplicate`` when the protocol accepts them (silently dropped
    otherwise -- the live host would have raised, and the run would not
    have produced further records).  The caller installs the returned
    instance and then runs ``on_restart`` through the real context, the
    same hook order as a snapshot restore.
    """
    clock = _ReplayClock()
    ctx = _NullContext(process_id, n_processes, clock)
    protocol = protocol_factory(process_id, n_processes)
    protocol.on_start(ctx)
    received = set()
    accepts_duplicates = getattr(protocol, "accepts_duplicates", False)
    for op, t, _process, payload in _iter_inputs(records, process_id):
        clock.now = t
        if op == "invoke":
            protocol.on_invoke(ctx, payload)
        elif payload.is_user and payload.message is not None:
            message = payload.message
            if message.id in received:
                if accepts_duplicates:
                    protocol.on_duplicate(ctx, message, payload.tag)
                continue
            received.add(message.id)
            protocol.on_user_message(ctx, message, payload.tag)
        else:
            protocol.on_control(ctx, payload.src, payload.payload)
    return protocol
