"""Lemma 4: contracting a cycle to its canonical weaker predicate.

Every non-β vertex ``y`` on a cycle can be eliminated: its incoming
conjunct ``x.p ▷ y.h`` and outgoing conjunct ``y.h' ▷ z.q`` (with
``(h, h') ≠ (r, s)``) together imply ``x.p ▷ z.q`` (using ``y.s ▷ y.r``
when ``h = s, h' = r``).  Repeating this while more than two vertices
remain and a non-β vertex exists yields a weaker predicate whose graph is
either a two-vertex cycle or an all-β cycle of the same order -- the
canonical forms of Lemma 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graphs.beta import beta_vertices, cycle_order, is_beta_at
from repro.graphs.cycles import ResolvedCycle
from repro.graphs.predicate_graph import LabeledEdge
from repro.predicates.ast import Conjunct, EventTerm, ForbiddenPredicate


@dataclass(frozen=True)
class ReductionStep:
    """One contraction: ``removed`` eliminated, ``new_edge`` introduced."""

    removed: str
    merged_in: LabeledEdge
    merged_out: LabeledEdge
    new_edge: LabeledEdge

    def __repr__(self) -> str:
        return "contract %s: %r + %r => %r" % (
            self.removed,
            self.merged_in,
            self.merged_out,
            self.new_edge,
        )


@dataclass(frozen=True)
class Reduction:
    """The full Lemma 4 derivation for one cycle."""

    original: ResolvedCycle
    steps: Tuple[ReductionStep, ...]
    reduced: ResolvedCycle

    @property
    def order(self) -> int:
        return cycle_order(self.reduced)


def reduce_cycle(cycle: ResolvedCycle) -> Reduction:
    """Contract non-β vertices until two vertices remain or all are β.

    The cycle order is invariant under every step (contracting a non-β
    vertex neither creates nor destroys β vertices), which is exactly the
    content of Lemma 4.
    """
    steps: List[ReductionStep] = []
    current = cycle
    while current.length > 2:
        position = _first_non_beta(current)
        if position is None:
            break  # all β: canonical crown form
        current, step = _contract(current, position)
        steps.append(step)
    return Reduction(original=cycle, steps=tuple(steps), reduced=current)


def _first_non_beta(cycle: ResolvedCycle) -> Optional[int]:
    for position in range(cycle.length):
        if not is_beta_at(cycle, position):
            return position
    return None


def _contract(cycle: ResolvedCycle, position: int) -> Tuple[ResolvedCycle, ReductionStep]:
    incoming = cycle.incoming_edge(position)
    outgoing = cycle.outgoing_edge(position)
    new_edge = LabeledEdge(
        tail=incoming.tail,
        head=outgoing.head,
        p=incoming.p,
        q=outgoing.q,
        index=-1,  # derived edge; not a conjunct of the original predicate
    )
    k = cycle.length
    vertices: List[str] = []
    edges: List[LabeledEdge] = []
    # Walk the cycle starting just after `position`, skipping it.
    for offset in range(1, k):
        i = (position + offset) % k
        vertices.append(cycle.vertices[i])
        if offset < k - 1:
            edges.append(cycle.outgoing_edge(i))
    edges.append(new_edge)
    reduced = ResolvedCycle(vertices=tuple(vertices), edges=tuple(edges))
    step = ReductionStep(
        removed=cycle.vertices[position],
        merged_in=incoming,
        merged_out=outgoing,
        new_edge=new_edge,
    )
    return reduced, step


def cycle_to_predicate(cycle: ResolvedCycle, name: Optional[str] = None) -> ForbiddenPredicate:
    """The forbidden predicate whose graph is exactly this cycle."""
    conjuncts = [
        Conjunct(EventTerm(edge.tail, edge.p), EventTerm(edge.head, edge.q))
        for edge in cycle.edges
    ]
    return ForbiddenPredicate.build(conjuncts, name=name)
