"""Cycle enumeration for predicate graphs.

``simple_cycles_digraph`` is Johnson's algorithm over a plain digraph; it
returns vertex cycles.  ``resolved_cycles`` expands each vertex cycle of a
*multigraph* into every choice of parallel edges (predicate graphs are
tiny, so the product is cheap), and also reports self-loop cycles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.poset.digraph import Digraph, Node
from repro.poset.algorithms import strongly_connected_components
from repro.graphs.predicate_graph import LabeledEdge, PredicateGraph


def simple_cycles_digraph(graph: Digraph) -> List[List[Node]]:
    """All simple directed cycles, Johnson-style.

    Self-loops appear as single-element cycles.  Each cycle is rotated to
    start at its smallest vertex; the result list is sorted.
    """
    cycles: List[List[Node]] = []

    # Self-loops first (Johnson's algorithm below works on loop-free graphs).
    work = graph.copy()
    for node in graph.nodes():
        if graph.has_edge(node, node):
            cycles.append([node])
            work.remove_edge(node, node)

    # Johnson's algorithm.
    nodes = work.nodes()
    for start in nodes:
        # Subgraph induced by start and all larger nodes, restricted to the
        # strongly connected component containing start.
        candidates = [n for n in work.nodes() if n >= start]
        sub = work.subgraph(candidates)
        component = None
        for scc in strongly_connected_components(sub):
            if start in scc and len(scc) > 1:
                component = set(scc)
                break
        if component is None:
            continue
        comp_graph = sub.subgraph(component)

        blocked: Set[Node] = set()
        blocked_map: Dict[Node, Set[Node]] = {n: set() for n in component}
        stack: List[Node] = []

        def unblock(node: Node) -> None:
            blocked.discard(node)
            while blocked_map[node]:
                other = blocked_map[node].pop()
                if other in blocked:
                    unblock(other)

        def circuit(node: Node) -> bool:
            found = False
            stack.append(node)
            blocked.add(node)
            for nxt in comp_graph.successors(node):
                if nxt == start:
                    cycles.append(list(stack))
                    found = True
                elif nxt not in blocked:
                    if circuit(nxt):
                        found = True
            if found:
                unblock(node)
            else:
                for nxt in comp_graph.successors(node):
                    blocked_map[nxt].add(node)
            stack.pop()
            return found

        circuit(start)

    canonical = []
    for cycle in cycles:
        pivot = cycle.index(min(cycle))
        canonical.append(cycle[pivot:] + cycle[:pivot])
    canonical.sort(key=lambda c: (len(c), c))
    return canonical


@dataclass(frozen=True)
class ResolvedCycle:
    """A cycle with concrete edges chosen among parallel conjuncts.

    ``vertices[i]`` is the tail of ``edges[i]``; ``edges[i]`` runs to
    ``vertices[(i + 1) % len]``.  Self-loop cycles have one vertex and one
    edge.
    """

    vertices: Tuple[str, ...]
    edges: Tuple[LabeledEdge, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) != len(self.edges):
            raise ValueError("a cycle has as many edges as vertices")
        for i, edge in enumerate(self.edges):
            if edge.tail != self.vertices[i]:
                raise ValueError("edge %r does not start at %r" % (edge, self.vertices[i]))
            if edge.head != self.vertices[(i + 1) % len(self.vertices)]:
                raise ValueError("edge %r does not close the cycle" % (edge,))

    @property
    def length(self) -> int:
        return len(self.vertices)

    def incoming_edge(self, position: int) -> LabeledEdge:
        """The edge arriving at ``vertices[position]``."""
        return self.edges[(position - 1) % len(self.edges)]

    def outgoing_edge(self, position: int) -> LabeledEdge:
        """The edge leaving ``vertices[position]``."""
        return self.edges[position]

    @property
    def is_degenerate(self) -> bool:
        """A single ``x.s ▷ x.r`` self-loop (not a usable cycle)."""
        return self.length == 1 and self.edges[0].is_degenerate

    def __repr__(self) -> str:
        return "Cycle[%s]" % " ".join(repr(e) for e in self.edges)


def resolved_cycles(pgraph: PredicateGraph) -> List[ResolvedCycle]:
    """Every simple cycle of the multigraph with edges made explicit.

    For a vertex cycle ``v0 .. v_{k-1}`` every combination of parallel
    edges between consecutive vertices yields one :class:`ResolvedCycle`.
    """
    results: List[ResolvedCycle] = []
    vertex_cycles = simple_cycles_digraph(
        pgraph.underlying_digraph(include_self_loops=True)
    )
    for cycle in vertex_cycles:
        k = len(cycle)
        edge_options = [
            pgraph.parallel_edges(cycle[i], cycle[(i + 1) % k]) for i in range(k)
        ]
        for combo in itertools.product(*edge_options):
            results.append(ResolvedCycle(vertices=tuple(cycle), edges=tuple(combo)))
    return results
