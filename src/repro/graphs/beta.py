"""β vertices and cycle order (Definition 4.3).

A vertex ``x`` on a cycle is a **β vertex** when its incoming edge ends at
``x.r`` (conjunct ``y.p ▷ x.r``) and its outgoing edge starts at ``x.s``
(conjunct ``x.s ▷ z.q``).  At a β vertex the causal chain through the
cycle must pass "backwards" through the message -- from its delivery to
its send -- which no single message provides; each β vertex therefore
costs the chain one message boundary.  The *order* of a cycle is its
number of β vertices.
"""

from __future__ import annotations

from typing import List

from repro.events import DELIVER, SEND
from repro.graphs.cycles import ResolvedCycle
from repro.graphs.predicate_graph import LabeledEdge


def is_beta_between(incoming: LabeledEdge, outgoing: LabeledEdge) -> bool:
    """β test for the vertex where ``incoming`` ends and ``outgoing`` starts."""
    return incoming.q is DELIVER and outgoing.p is SEND


def is_beta_at(cycle: ResolvedCycle, position: int) -> bool:
    """β test for the cycle vertex at ``position``."""
    return is_beta_between(cycle.incoming_edge(position), cycle.outgoing_edge(position))


def beta_vertices(cycle: ResolvedCycle) -> List[str]:
    """The β vertices of the cycle, in cycle order."""
    return [
        cycle.vertices[i]
        for i in range(cycle.length)
        if is_beta_at(cycle, i)
    ]


def cycle_order(cycle: ResolvedCycle) -> int:
    """The number of β vertices (the paper's "order" of the cycle)."""
    return len(beta_vertices(cycle))
