"""Graphviz (DOT) export for predicate graphs and runs.

The output is plain DOT text: paste into any Graphviz renderer.  β
vertices of a chosen cycle are highlighted, mirroring the paper's
figures.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.beta import beta_vertices
from repro.graphs.cycles import ResolvedCycle
from repro.graphs.predicate_graph import PredicateGraph
from repro.runs.user_run import UserRun


def predicate_graph_to_dot(
    graph: PredicateGraph, highlight_cycle: Optional[ResolvedCycle] = None
) -> str:
    """Render ``G_B(V, E)``; optionally highlight one cycle's edges and
    double-circle its β vertices."""
    betas = set(beta_vertices(highlight_cycle)) if highlight_cycle else set()
    cycle_edges = (
        {(e.tail, e.head, e.p.symbol, e.q.symbol) for e in highlight_cycle.edges}
        if highlight_cycle
        else set()
    )
    lines = ["digraph predicate {", "  rankdir=LR;"]
    for vertex in graph.vertices:
        shape = "doublecircle" if vertex in betas else "circle"
        lines.append('  "%s" [shape=%s];' % (vertex, shape))
    for edge in graph.edges:
        key = (edge.tail, edge.head, edge.p.symbol, edge.q.symbol)
        style = ' color="red" penwidth=2' if key in cycle_edges else ""
        lines.append(
            '  "%s" -> "%s" [label="%s>%s"%s];'
            % (edge.tail, edge.head, edge.p.symbol, edge.q.symbol, style)
        )
    lines.append("}")
    return "\n".join(lines)


def user_run_to_dot(run: UserRun) -> str:
    """Render a user run: one cluster per process (process order solid),
    message edges dashed."""
    lines = ["digraph run {", "  rankdir=LR;"]
    for process in run.processes():
        lines.append("  subgraph cluster_p%d {" % process)
        lines.append('    label="P%d";' % process)
        events = run.events_of_process(process)
        ordered = sorted(
            events, key=lambda e: sum(1 for o in events if run.before(o, e))
        )
        for event in ordered:
            lines.append('    "%r";' % event)
        for before, after in zip(ordered, ordered[1:]):
            if run.before(before, after):
                lines.append('    "%r" -> "%r";' % (before, after))
        lines.append("  }")
    from repro.events import Event

    for message in run.messages():
        send, deliver = Event.send(message.id), Event.deliver(message.id)
        if run.has_event(send) and run.has_event(deliver):
            label = message.color or ""
            lines.append(
                '  "%r" -> "%r" [style=dashed label="%s"];' % (send, deliver, label)
            )
    lines.append("}")
    return "\n".join(lines)
