"""Predicate graphs (§4.2): the decision structure for classification.

The predicate graph of ``B`` has one vertex per message variable and one
directed edge per conjunct ``xj.p ▷ xk.q`` labeled ``(p, q)``.  Cycles and
their β vertices decide implementability and the protocol class.
"""

from repro.graphs.predicate_graph import LabeledEdge, PredicateGraph
from repro.graphs.cycles import (
    ResolvedCycle,
    resolved_cycles,
    simple_cycles_digraph,
)
from repro.graphs.beta import beta_vertices, cycle_order, is_beta_at
from repro.graphs.reduction import ReductionStep, reduce_cycle, cycle_to_predicate
from repro.graphs.dot import predicate_graph_to_dot, user_run_to_dot

__all__ = [
    "PredicateGraph",
    "LabeledEdge",
    "ResolvedCycle",
    "simple_cycles_digraph",
    "resolved_cycles",
    "beta_vertices",
    "cycle_order",
    "is_beta_at",
    "ReductionStep",
    "reduce_cycle",
    "cycle_to_predicate",
    "predicate_graph_to_dot",
    "user_run_to_dot",
]
