"""The predicate graph ``G_B(V, E)`` of a forbidden predicate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.events import DELIVER, SEND, EventKind
from repro.poset import Digraph
from repro.predicates.ast import Conjunct, ForbiddenPredicate


@dataclass(frozen=True, order=True)
class LabeledEdge:
    """One edge of the multigraph: conjunct ``tail.p ▷ head.q``.

    ``index`` is the position of the conjunct in the predicate, which keeps
    parallel edges distinct.
    """

    tail: str
    head: str
    p: EventKind  # kind at the tail (s or r)
    q: EventKind  # kind at the head (s or r)
    index: int

    @property
    def is_self_loop(self) -> bool:
        return self.tail == self.head

    @property
    def is_degenerate(self) -> bool:
        """The ``x.s ▷ x.r`` self-loop (see DESIGN.md caveat)."""
        return self.is_self_loop and self.p is SEND and self.q is DELIVER

    def __repr__(self) -> str:
        return "%s.%s>%s.%s" % (
            self.tail,
            self.p.symbol,
            self.head,
            self.q.symbol,
        )


class PredicateGraph:
    """Multigraph over the predicate's variables, one edge per conjunct."""

    def __init__(self, predicate: ForbiddenPredicate):
        self.predicate = predicate
        self.vertices: Tuple[str, ...] = predicate.variables
        self.edges: List[LabeledEdge] = [
            LabeledEdge(
                tail=conjunct.left.variable,
                head=conjunct.right.variable,
                p=conjunct.left.kind,
                q=conjunct.right.kind,
                index=i,
            )
            for i, conjunct in enumerate(predicate.conjuncts)
        ]

    def parallel_edges(self, tail: str, head: str) -> List[LabeledEdge]:
        """Edges from ``tail`` to ``head`` (one per parallel conjunct)."""
        return [e for e in self.edges if e.tail == tail and e.head == head]

    def self_loops(self) -> List[LabeledEdge]:
        """Edges whose endpoints coincide."""
        return [e for e in self.edges if e.is_self_loop]

    def underlying_digraph(self, include_self_loops: bool = False) -> Digraph:
        """The simple digraph used for vertex-cycle enumeration."""
        graph = Digraph(nodes=self.vertices)
        for edge in self.edges:
            if edge.is_self_loop and not include_self_loops:
                continue
            graph.add_edge(edge.tail, edge.head)
        return graph

    def event_graph(self) -> Digraph:
        """Graph over event terms: conjunct edges plus implicit
        ``x.s → x.r`` for every variable.  The predicate's conjunction is
        satisfiable in *some* run iff this graph is acyclic."""
        graph = Digraph()
        for variable in self.vertices:
            graph.add_edge((variable, SEND), (variable, DELIVER))
        for edge in self.edges:
            graph.add_edge((edge.tail, edge.p), (edge.head, edge.q))
        return graph

    def __repr__(self) -> str:
        return "PredicateGraph(V=%s, E=%s)" % (list(self.vertices), self.edges)
