"""Execute a :class:`~repro.chaos.plan.ChaosPlan` against a live cluster.

Topology: every host binds a *private* port and is fronted by a
:class:`~repro.faults.proxy.FaultProxy` on its *public* port (the one in
the cluster's port list).  Peers, the load generator and the live
observer all dial public ports, so the harness can sever or blackhole
any link -- or isolate a whole host -- without the host's cooperation,
exactly like a misbehaving network would.

Host handles come in two flavours:

:class:`InlineHost`
    a :class:`~repro.net.host.NetHost` in this process.  ``kill`` is
    :meth:`~repro.net.host.NetHost.crash` (volatile state gone, WAL
    kept) followed by a fresh ``NetHost`` on the same WAL directory;
    ``pause`` is emulated by blackholing every link to and from the
    host at the proxies (the observable silence of a SIGSTOP without
    the signal).

:class:`ProcHost`
    a real ``repro serve`` OS process.  ``kill`` is SIGKILL + respawn;
    ``pause`` is SIGSTOP/SIGCONT.  Used by ``repro chaos --proc`` for
    full-fidelity runs; the inline flavour keeps tests fast.

After the plan completes the harness heals everything and asserts the
three resilience invariants, reducing the evidence to a
:class:`ChaosReport`:

1. **ordering holds**: the live :class:`~repro.verification.engine.SpecMonitor`
   saw no violation (and the end-of-run membership oracle agrees);
2. **no acked message lost**: every invoke recorded durably in some
   host's WAL has exactly one matching deliver EVENT in its receiver's
   WAL -- the cross-check joins on content-addressed ids, so it survives
   retransmission and replay;
3. **re-convergence**: within the deadline every host is reachable
   again, all links report ``up``, and delivered == invoked with no
   local pending work.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import ChaosAction, ChaosPlan
from repro.faults.proxy import FaultProxy
from repro.net import codec
from repro.net.cluster import LiveObserver, LoadGenerator, free_ports
from repro.net.host import NetHost
from repro.net.resilience import LINK_UP, ReconnectPolicy, ResilienceConfig
from repro.net.transport import DEFAULT_TIME_SCALE

__all__ = ["ChaosReport", "InlineHost", "ProcHost", "run_chaos", "run_chaos_sync"]


def fast_resilience(deadline: float = 20.0) -> ResilienceConfig:
    """Chaos-speed knobs: 50ms heartbeats so a blackhole is detected in
    well under a second, sub-second reconnect backoff cap."""
    return ResilienceConfig(
        heartbeat_interval=0.05,
        reconnect=ReconnectPolicy(base=0.05, cap=0.5, deadline=deadline),
    )


# -- host handles --------------------------------------------------------------


class InlineHost:
    """An in-process :class:`NetHost` behind its fault proxy."""

    def __init__(
        self,
        factory: Callable[[int, int], object],
        process_id: int,
        public_ports: Sequence[int],
        private_port: int,
        wal_root: str,
        run_id: str,
        resilience: ResilienceConfig,
        time_scale: float = DEFAULT_TIME_SCALE,
        wal_meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.factory = factory
        self.process_id = process_id
        self.public_ports = list(public_ports)
        self.private_port = private_port
        self.wal_root = wal_root
        self.run_id = run_id
        self.resilience = resilience
        self.time_scale = time_scale
        self.wal_meta = wal_meta
        self.host: Optional[NetHost] = None
        self.restarts = 0
        self.errors: List[str] = []

    def _make(self) -> NetHost:
        return NetHost(
            self.factory,
            self.process_id,
            self.public_ports,
            run_id=self.run_id,
            time_scale=self.time_scale,
            wal_dir=self.wal_root,
            wal_meta=self.wal_meta,
            resilience=self.resilience,
            listen_port=self.private_port,
        )

    async def start(self) -> None:
        self.host = self._make()
        await self.host.start()

    async def ready(self) -> None:
        assert self.host is not None
        await self.host.ready()

    @property
    def alive(self) -> bool:
        return self.host is not None and not self.host._done.is_set()

    async def kill(self) -> None:
        """Die like a SIGKILL: volatile state gone, WAL intact."""
        if self.host is not None:
            self.errors.extend(self.host.errors)
            await self.host.crash()

    async def restart(self) -> None:
        """A new incarnation recovers from the WAL and re-joins."""
        self.restarts += 1
        self.host = self._make()
        await self.host.start()

    async def shutdown(self) -> None:
        if self.host is not None:
            self.errors.extend(
                error
                for error in self.host.errors
                if error not in self.errors
            )
            await self.host.shutdown()

    def stats(self) -> Optional[Dict[str, Any]]:
        return self.host.stats_body() if self.host is not None else None


class ProcHost:
    """A ``repro serve`` OS process behind its fault proxy."""

    def __init__(
        self,
        protocol: str,
        process_id: int,
        port_base: int,
        n_processes: int,
        private_port: int,
        wal_root: str,
        run_id: str,
        time_scale: float = DEFAULT_TIME_SCALE,
        heartbeat_interval: float = 0.05,
    ) -> None:
        self.protocol = protocol
        self.process_id = process_id
        self.port_base = port_base
        self.n_processes = n_processes
        self.private_port = private_port
        self.wal_root = wal_root
        self.run_id = run_id
        self.time_scale = time_scale
        self.heartbeat_interval = heartbeat_interval
        self.proc: Optional[subprocess.Popen] = None
        self.restarts = 0
        self.errors: List[str] = []

    def _command(self) -> List[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            self.protocol,
            "--processes",
            str(self.n_processes),
            "--process-id",
            str(self.process_id),
            "--port-base",
            str(self.port_base),
            "--listen-port",
            str(self.private_port),
            "--run-id",
            self.run_id,
            "--time-scale",
            str(self.time_scale),
            "--heartbeat-interval",
            str(self.heartbeat_interval),
            "--wal",
            self.wal_root,
        ]

    async def start(self) -> None:
        self.proc = subprocess.Popen(
            self._command(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    async def ready(self) -> None:
        """The load-client READY probe is the only readiness signal an
        external process exposes; :func:`run_chaos` polls it anyway."""

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    async def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()  # SIGKILL: no drain, no final fsync
            self.proc.wait()

    async def restart(self) -> None:
        self.restarts += 1
        await self.start()

    def pause(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGSTOP)

    def resume(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGCONT)

    async def shutdown(self) -> None:
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()

    def stats(self) -> Optional[Dict[str, Any]]:
        return None  # polled over the wire like every other host


# -- the report ----------------------------------------------------------------


@dataclass
class ChaosReport:
    """What one chaos run proved (the ``repro chaos`` JSON output)."""

    protocol: str
    n_processes: int
    seed: int
    mode: str  # "inline" | "proc"
    plan: Dict[str, Any]
    requested: int = 0
    invoked: int = 0
    delivered: int = 0
    acked: int = 0  # durably-logged invokes (the loss-invariant universe)
    acked_lost: List[str] = field(default_factory=list)
    double_delivered: List[str] = field(default_factory=list)
    violation: Optional[str] = None
    reconverged: bool = False
    converge_seconds: float = 0.0
    convergence_deadline: float = 0.0
    links_up: bool = False
    redials: int = 0
    restarts: int = 0
    frames_shed: int = 0
    backpressure_signals: int = 0
    observer_reconnects: int = 0
    link_transitions: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All three invariants held."""
        return (
            self.violation is None
            and not self.acked_lost
            and not self.double_delivered
            and self.reconverged
            and self.links_up
        )

    def to_json(self) -> Dict[str, Any]:
        body = dict(self.__dict__)
        body["ok"] = self.ok
        return body

    def render(self) -> str:
        lines = [
            "chaos run: %s over %d processes (seed %d, %s hosts)"
            % (self.protocol, self.n_processes, self.seed, self.mode),
            "  plan        %s"
            % ("; ".join(
                ChaosAction.from_json(a).describe()
                for a in self.plan.get("actions", [])
            ) or "none"),
            "  messages    %d requested, %d invoked (%d acked), %d delivered"
            % (self.requested, self.invoked, self.acked, self.delivered),
            "  ordering    %s"
            % ("violation-free" if self.violation is None
               else "VIOLATED: %s" % self.violation),
            "  durability  %s"
            % ("no acked message lost or double-delivered"
               if not self.acked_lost and not self.double_delivered
               else "%d LOST, %d DOUBLE-DELIVERED"
               % (len(self.acked_lost), len(self.double_delivered))),
            "  convergence %s"
            % ("re-converged in %.2fs (deadline %.1fs), all links up"
               % (self.converge_seconds, self.convergence_deadline)
               if self.reconverged and self.links_up
               else "FAILED (reconverged=%s links_up=%s after %.2fs)"
               % (self.reconverged, self.links_up, self.converge_seconds)),
            "  recovery    %d restarts, %d re-dials, %d frames shed, "
            "%d backpressure signals"
            % (self.restarts, self.redials, self.frames_shed,
               self.backpressure_signals),
        ]
        if self.link_transitions:
            lines.append(
                "  detector    "
                + ", ".join(
                    "%s=%d" % (k, v)
                    for k, v in sorted(self.link_transitions.items())
                )
            )
        for error in self.errors:
            lines.append("  error       %s" % error)
        lines.append("  verdict     %s" % ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


# -- invariant 2: the WAL cross-check -----------------------------------------


def wal_cross_check(
    wal_root: str, n_processes: int
) -> Tuple[int, List[str], List[str]]:
    """Join every durably-acked invoke against its receiver's delivers.

    Returns ``(acked, lost_ids, double_ids)``.  An invoke is *acked*
    once its INPUT record is in the inviting host's WAL -- anything the
    load generator offered that died in a socket buffer before that
    point was never acknowledged and is legitimately lost.  The join key
    is the content-addressed message id, so a retransmitted or replayed
    copy of the same message cannot masquerade as a second delivery.
    """
    from repro.wal import read_log
    from repro.wal import records as rec

    invoked: Dict[str, Tuple[str, int]] = {}
    delivers: Dict[int, Counter] = {p: Counter() for p in range(n_processes)}
    for process in range(n_processes):
        directory = os.path.join(wal_root, "p%d" % process)
        if not os.path.isdir(directory):
            continue
        for record in read_log(directory).records:
            if record.kind == rec.INPUT and record.body.get("op") == "invoke":
                message = record.body.get("m", {})
                cid = record.body.get("cid") or message.get("id", "?")
                invoked[cid] = (
                    message.get("id", cid),
                    int(message.get("receiver", process)),
                )
            elif record.kind == rec.EVENT and record.body.get("k") == "deliver":
                cid = record.body.get("cid") or record.body.get("m", {}).get(
                    "id", "?"
                )
                delivers[process][cid] += 1
    lost = sorted(
        mid
        for cid, (mid, receiver) in invoked.items()
        if delivers.get(receiver, Counter())[cid] == 0
    )
    double = sorted(
        mid
        for cid, (mid, receiver) in invoked.items()
        if delivers.get(receiver, Counter())[cid] > 1
    )
    return len(invoked), lost, double


# -- wire polling (fresh connection per poll: load streams die with hosts) -----


async def poll_stats(
    port: int,
    run_id: str,
    host: str = "127.0.0.1",
    timeout: float = 2.0,
) -> Optional[Dict[str, Any]]:
    """One STATS body over a throwaway load connection, or ``None`` if
    the host is unreachable / not (yet) ready."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError):
        return None
    try:
        writer.write(
            codec.encode_frame(
                codec.HELLO, {"process": -1, "role": "load", "run": run_id}
            )
        )
        await writer.drain()
        deadline = time.monotonic() + timeout
        saw_ready = False
        while time.monotonic() < deadline:
            remaining = max(0.05, deadline - time.monotonic())
            frame = await asyncio.wait_for(
                codec.read_frame(reader), remaining
            )
            if frame is None:
                return None
            if frame.kind == codec.READY and not saw_ready:
                saw_ready = True
                writer.write(codec.encode_frame(codec.STATS, {}))
                await writer.drain()
            elif frame.kind == codec.STATS:
                return frame.body
            # BACKPRESSURE and anything else: skip.
        return None
    except (OSError, asyncio.TimeoutError, codec.CodecError, ConnectionError):
        return None
    finally:
        if not writer.is_closing():
            writer.close()


# -- the run -------------------------------------------------------------------


async def run_chaos(
    protocol: str = "fifo",
    *,
    wal_root: str,
    n_processes: int = 3,
    seed: int = 0,
    rate: float = 200.0,
    duration: float = 3.0,
    n_actions: int = 3,
    kinds: Optional[Sequence[str]] = None,
    plan: Optional[ChaosPlan] = None,
    spec: Any = "auto",
    convergence_deadline: float = 15.0,
    proc: bool = False,
    port_base: Optional[int] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    closed_loop: bool = True,
    resilience: Optional[ResilienceConfig] = None,
) -> ChaosReport:
    """One seeded chaos run; see the module docstring for the contract.

    ``spec="auto"`` monitors the protocol's own default specification
    live (``None`` disables monitoring).  ``wal_root`` must be a fresh
    directory per run -- the WALs double as the loss-invariant evidence.
    ``resilience`` overrides the default fast-heartbeat configuration
    (inline hosts only; proc hosts take the heartbeat interval on their
    command line) -- the knob the backpressure benchmarks turn.
    """
    from repro.mc.registry import resolve_protocol

    factory = resolve_protocol(protocol)
    if not protocol.startswith("reliable-"):
        # Chaos severs real links: the channel assumption is gone, so
        # the ARQ sublayer is not optional here.
        from repro.protocols.reliable import make_reliable

        factory = make_reliable(factory)
    if spec == "auto":
        from repro.mc.registry import default_spec_for

        spec = default_spec_for(protocol)

    if plan is None:
        plan = ChaosPlan.generate(
            seed,
            n_processes,
            duration,
            n_actions=n_actions,
            kinds=tuple(kinds) if kinds else ("kill", "sever", "blackhole"),
        )
    run_id = "chaos-%d" % seed
    if port_base is not None:
        public = [port_base + index for index in range(n_processes)]
        private = [port_base + n_processes + index for index in range(n_processes)]
    else:
        if proc:
            raise ValueError("proc mode needs an explicit port_base "
                             "(serve processes use contiguous ports)")
        ports = free_ports(2 * n_processes)
        public, private = ports[:n_processes], ports[n_processes:]

    if resilience is None:
        resilience = fast_resilience(deadline=max(convergence_deadline, 10.0))
    report = ChaosReport(
        protocol=protocol,
        n_processes=n_processes,
        seed=seed,
        mode="proc" if proc else "inline",
        plan=plan.to_json(),
        convergence_deadline=convergence_deadline,
    )

    proxies = [
        FaultProxy(public[index], private[index])
        for index in range(n_processes)
    ]
    handles: List[Any] = []
    if proc:
        assert port_base is not None
        # `repro serve` stacks the ARQ sublayer only when fault flags are
        # given; chaos severs real links, so serve the catalogue's
        # reliable- variant explicitly.
        serve_protocol = (
            protocol
            if protocol.startswith("reliable-")
            else "reliable-" + protocol
        )
        for index in range(n_processes):
            handles.append(
                ProcHost(
                    serve_protocol,
                    index,
                    port_base,
                    n_processes,
                    private[index],
                    wal_root,
                    run_id,
                    time_scale=time_scale,
                    heartbeat_interval=resilience.heartbeat_interval,
                )
            )
    else:
        for index in range(n_processes):
            handles.append(
                InlineHost(
                    factory,
                    index,
                    public,
                    private[index],
                    wal_root,
                    run_id,
                    resilience,
                    time_scale=time_scale,
                    wal_meta={"protocol": protocol},
                )
            )

    observer = (
        LiveObserver(n_processes, spec=spec, reconnect=True)
        if spec is not None
        else None
    )
    load = LoadGenerator(public, run_id=run_id, seed=seed)

    async def apply_action(action: ChaosAction) -> None:
        handle = handles[action.target]
        if action.kind == "kill":
            await handle.kill()
            await asyncio.sleep(action.duration)
            await handle.restart()
        elif action.kind == "pause":
            if proc:
                handle.pause()
                await asyncio.sleep(action.duration)
                handle.resume()
            else:
                # SIGSTOP emulation: total silence at the proxies, both
                # the host's inbound and everything it says to others.
                proxies[action.target].blackhole()
                for index, proxy in enumerate(proxies):
                    if index != action.target:
                        proxy.blackhole(action.target)
                await asyncio.sleep(action.duration)
                proxies[action.target].heal()
                for index, proxy in enumerate(proxies):
                    if index != action.target:
                        proxy.heal(action.target)
        elif action.kind == "sever":
            proxies[action.target].sever(action.src)
            await asyncio.sleep(action.duration)
            proxies[action.target].heal(action.src)
        elif action.kind == "blackhole":
            proxies[action.target].blackhole(action.src)
            await asyncio.sleep(action.duration)
            proxies[action.target].heal(action.src)

    async def execute_plan(started: float) -> None:
        loop = asyncio.get_running_loop()
        for action in plan.actions:
            delay = started + action.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await apply_action(action)

    stats: List[Dict[str, Any]] = []
    try:
        for proxy in proxies:
            await proxy.start()
        for handle in handles:
            await handle.start()
        # Readiness probe that works for both handle flavours.
        ready_deadline = time.monotonic() + 20.0
        while time.monotonic() < ready_deadline:
            polled = await asyncio.gather(
                *(poll_stats(port, run_id) for port in public)
            )
            if all(body is not None for body in polled):
                break
            await asyncio.sleep(0.1)
        else:
            raise RuntimeError("cluster did not become ready for chaos")
        if observer is not None:
            await observer.connect(public, run_id=run_id)
        await load.connect()

        loop = asyncio.get_running_loop()
        started = loop.time()
        load_task = loop.create_task(
            load.run(rate, duration, closed_loop=closed_loop)
        )
        plan_task = loop.create_task(execute_plan(started))
        await asyncio.gather(load_task, plan_task)

        # Belt and braces: nothing stays faulted past the plan.
        for proxy in proxies:
            proxy.heal()
        for handle in handles:
            if not handle.alive:
                await handle.restart()

        # Invariant 3: re-convergence within the deadline.
        converge_start = time.monotonic()
        deadline = converge_start + convergence_deadline
        converged = False
        while time.monotonic() < deadline:
            polled = await asyncio.gather(
                *(poll_stats(port, run_id) for port in public)
            )
            if all(body is not None for body in polled):
                stats = list(polled)  # type: ignore[arg-type]
                invoked = sum(body["invoked"] for body in stats)
                delivered = sum(body["deliveries"] for body in stats)
                pending = sum(body["pending"] for body in stats)
                links_ok = all(
                    state == LINK_UP
                    for body in stats
                    for state in body.get("links", {}).values()
                )
                if delivered >= invoked and pending == 0 and links_ok:
                    converged = True
                    break
            await asyncio.sleep(0.1)
        report.converge_seconds = time.monotonic() - converge_start
        report.reconverged = converged
        if not stats:
            polled = await asyncio.gather(
                *(poll_stats(port, run_id) for port in public)
            )
            stats = [body for body in polled if body is not None]
        report.links_up = bool(stats) and all(
            state == LINK_UP
            for body in stats
            for state in body.get("links", {}).values()
        )

        # Invariant 1: the live ordering monitor.
        if observer is not None:
            settle = time.monotonic() + 3.0
            while (
                observer.events_merged < observer.events_seen
                or observer.pending_merge
            ) and time.monotonic() < settle:
                await asyncio.sleep(0.02)
            observer.final_check()
            found = observer.violation
            if found is not None:
                report.violation = (
                    found if isinstance(found, str) else repr(found)
                )
            report.observer_reconnects = observer.reconnects
            report.link_transitions = {
                probe: count
                for probe, count in observer.probe_counts.items()
                if probe.startswith("link.")
            }

        report.requested = load.requested
        report.invoked = sum(body.get("invoked", 0) for body in stats)
        report.delivered = sum(body.get("deliveries", 0) for body in stats)
        report.redials = sum(body.get("redials", 0) for body in stats)
        report.frames_shed = sum(body.get("frames_shed", 0) for body in stats)
        report.backpressure_signals = load.backpressure_signals
        report.restarts = sum(handle.restarts for handle in handles)
        report.errors.extend(load.errors)
        if observer is not None:
            report.errors.extend(observer.errors)
    finally:
        await load.close()
        if observer is not None:
            await observer.close()
        for handle in handles:
            try:
                await handle.shutdown()
            except Exception as exc:  # noqa: BLE001 - teardown must finish
                report.errors.append(
                    "shutdown of host %s: %s" % (handle.process_id, exc)
                )
        for proxy in proxies:
            await proxy.close()

    # Invariant 2: the durable cross-check (after shutdown: final fsync).
    report.acked, report.acked_lost, report.double_delivered = wal_cross_check(
        wal_root, n_processes
    )
    # The "gave up re-dialing" and transient-stream errors are expected
    # chaos debris on *killed* incarnations; real problems (protocol
    # errors, WAL corruption) surface through the invariants.  Keep host
    # errors out of the verdict but visible for forensics.
    for handle in handles:
        for error in getattr(handle, "errors", []):
            report.errors.append("P%d: %s" % (handle.process_id, error))
    return report


def run_chaos_sync(*args: Any, **kwargs: Any) -> ChaosReport:
    """:func:`run_chaos` from synchronous code (tests, CLI)."""
    return asyncio.run(run_chaos(*args, **kwargs))
