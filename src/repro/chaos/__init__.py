"""Seeded chaos testing for the real-network runtime.

The resilience layer (:mod:`repro.net.resilience`,
:mod:`repro.faults.proxy`) claims three things: a severed or blackholed
link heals automatically, an acked message is never lost or
double-delivered across crashes, and the live ordering specification
stays violation-free through all of it.  This package *checks* those
claims instead of trusting them:

:class:`~repro.chaos.plan.ChaosPlan`
    a seeded, reproducible schedule of faults -- process kills (with
    restart from the WAL), pauses (SIGSTOP-shaped silence), severed
    links and blackholed links -- generated from a single integer seed
    so a failing run is a bug report, not an anecdote;

:func:`~repro.chaos.harness.run_chaos`
    executes the plan against a live loopback cluster (every host
    fronted by a :class:`~repro.faults.proxy.FaultProxy`), then asserts
    the three invariants and reduces the evidence to a JSON-ready
    :class:`~repro.chaos.harness.ChaosReport`.

``repro chaos`` is the command-line entry point.
"""

from repro.chaos.plan import ChaosAction, ChaosPlan, ACTION_KINDS
from repro.chaos.harness import (
    ChaosReport,
    run_chaos,
    run_chaos_sync,
    wal_cross_check,
)

__all__ = [
    "ACTION_KINDS",
    "ChaosAction",
    "ChaosPlan",
    "ChaosReport",
    "run_chaos",
    "run_chaos_sync",
    "wal_cross_check",
]
