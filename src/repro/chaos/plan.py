"""Seeded, reproducible fault schedules for chaos runs.

A :class:`ChaosPlan` is a list of timed :class:`ChaosAction` entries.
Plans are *generated* from a seed (:meth:`ChaosPlan.generate`) so that a
chaos run is fully described by ``(protocol, seed, knobs)`` -- the same
triple always produces the same fault schedule, which is what makes a
failing run reportable.  Actions never overlap: each one completes (its
outage heals, its killed process restarts) before the next begins, so a
plan exercises recovery paths rather than compounding outages into an
uninterpretable pile-up.  Compounding is still reachable -- construct a
plan by hand with overlapping times -- but it is not what the seeded
generator produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ACTION_KINDS", "ChaosAction", "ChaosPlan"]

#: ``kill``: SIGKILL the target (or :meth:`NetHost.crash` inline) and
#: restart it from its WAL after ``duration`` seconds.
#: ``pause``: stop the target without killing it (SIGSTOP for a real
#: process; full-proxy blackhole for an inline host) for ``duration``.
#: ``sever``: cut the ``src -> target`` link at target's proxy (EOF).
#: ``blackhole``: silently discard the ``src -> target`` link's bytes.
ACTION_KINDS = ("kill", "pause", "sever", "blackhole")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault.

    ``at`` is seconds after traffic starts.  ``target`` is the faulted
    host; for link faults ``src`` names the peer whose traffic *into*
    the target is faulted (``None`` = every source, a full isolation).
    ``duration`` is how long the outage lasts before the harness heals
    it (for ``kill``: how long the process stays dead).
    """

    at: float
    kind: str
    target: int
    duration: float
    src: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                "unknown chaos action %r (expected one of %s)"
                % (self.kind, ", ".join(ACTION_KINDS))
            )
        if self.at < 0 or self.duration <= 0:
            raise ValueError("action needs at >= 0 and duration > 0")
        if self.src is not None and self.src == self.target:
            raise ValueError("a link fault needs src != target")

    @property
    def ends_at(self) -> float:
        return self.at + self.duration

    def describe(self) -> str:
        if self.kind in ("sever", "blackhole"):
            origin = "*" if self.src is None else "P%d" % self.src
            return "t+%.2fs %s %s->P%d for %.2fs" % (
                self.at,
                self.kind,
                origin,
                self.target,
                self.duration,
            )
        return "t+%.2fs %s P%d for %.2fs" % (
            self.at,
            self.kind,
            self.target,
            self.duration,
        )

    def to_json(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
        }
        if self.src is not None:
            body["src"] = self.src
        return body

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "ChaosAction":
        return cls(
            at=float(body["at"]),
            kind=str(body["kind"]),
            target=int(body["target"]),
            duration=float(body["duration"]),
            src=int(body["src"]) if body.get("src") is not None else None,
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A reproducible fault schedule over one chaos run."""

    seed: int
    n_processes: int
    actions: Tuple[ChaosAction, ...]

    @classmethod
    def generate(
        cls,
        seed: int,
        n_processes: int,
        duration: float,
        n_actions: int = 3,
        kinds: Sequence[str] = ACTION_KINDS,
        min_outage: float = 0.3,
        max_outage: float = 1.0,
        settle: float = 0.5,
    ) -> "ChaosPlan":
        """A non-overlapping schedule drawn from ``random.Random(seed)``.

        Actions are packed into ``[0.2, duration]`` with at least
        ``settle`` seconds between one action healing and the next
        firing, so each recovery is observable in isolation.  If the
        window cannot fit ``n_actions`` the plan holds fewer -- chaos
        density should come from a longer run, not stacked outages.
        """
        if n_processes < 2:
            raise ValueError("chaos needs at least 2 processes")
        for kind in kinds:
            if kind not in ACTION_KINDS:
                raise ValueError("unknown chaos action kind %r" % (kind,))
        rng = random.Random(seed)
        actions: List[ChaosAction] = []
        cursor = 0.2
        for _ in range(n_actions):
            outage = rng.uniform(min_outage, max_outage)
            if cursor + outage > duration + max_outage:
                break
            kind = rng.choice(list(kinds))
            target = rng.randrange(n_processes)
            src: Optional[int] = None
            if kind in ("sever", "blackhole"):
                src = rng.randrange(n_processes - 1)
                if src >= target:
                    src += 1
            actions.append(
                ChaosAction(
                    at=round(cursor, 3),
                    kind=kind,
                    target=target,
                    duration=round(outage, 3),
                    src=src,
                )
            )
            cursor += outage + settle + rng.uniform(0.0, settle)
        return cls(seed=seed, n_processes=n_processes, actions=tuple(actions))

    def describe(self) -> str:
        if not self.actions:
            return "empty plan (seed %d)" % self.seed
        return "; ".join(action.describe() for action in self.actions)

    @property
    def ends_at(self) -> float:
        """When the last outage heals (0.0 for an empty plan)."""
        return max((action.ends_at for action in self.actions), default=0.0)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "n_processes": self.n_processes,
            "actions": [action.to_json() for action in self.actions],
        }

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "ChaosPlan":
        return cls(
            seed=int(body["seed"]),
            n_processes=int(body["n_processes"]),
            actions=tuple(
                ChaosAction.from_json(entry) for entry in body.get("actions", [])
            ),
        )
