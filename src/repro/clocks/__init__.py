"""Logical clocks over the run model.

The tags of the causal protocols are views of these structures; the
module makes them first-class so the classic characterizations can be
stated and tested against recorded runs:

- Lamport clocks respect causality (``e ▷ f ⇒ L(e) < L(f)``);
- vector clocks characterize it exactly (``e ▷ f ⇔ V(e) < V(f)``).
"""

from repro.clocks.vector import (
    VectorClock,
    assign_lamport_clocks,
    assign_vector_clocks,
)

__all__ = ["VectorClock", "assign_vector_clocks", "assign_lamport_clocks"]
