"""Vector and Lamport clocks, and their assignment over user runs."""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Tuple

from repro.events import DELIVER, SEND, Event
from repro.runs.user_run import UserRun


@functools.total_ordering
class VectorClock:
    """An immutable vector clock over ``n`` components.

    Comparison is the standard partial order: ``a < b`` iff every
    component of ``a`` is ≤ the corresponding component of ``b`` and some
    component is strictly smaller.  ``a.concurrent(b)`` when neither
    dominates.  (``<=``/``sorted`` use this partial order, so sorting a
    set of pairwise-concurrent clocks is not meaningful -- use
    ``as_tuple()`` for lexicographic needs.)
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int]):
        self._components = tuple(int(c) for c in components)
        if any(c < 0 for c in self._components):
            raise ValueError("vector clock components must be non-negative")

    @staticmethod
    def zero(n: int) -> "VectorClock":
        """The all-zero clock of ``n`` components."""
        return VectorClock((0,) * n)

    @property
    def size(self) -> int:
        return len(self._components)

    def as_tuple(self) -> Tuple[int, ...]:
        """The components as a plain tuple."""
        return self._components

    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def tick(self, index: int) -> "VectorClock":
        """A copy with component ``index`` advanced by one."""
        components = list(self._components)
        components[index] += 1
        return VectorClock(components)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum with ``other``."""
        self._check_size(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    def _check_size(self, other: "VectorClock") -> None:
        if self.size != other.size:
            raise ValueError(
                "mismatched vector clock sizes %d and %d" % (self.size, other.size)
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __lt__(self, other: "VectorClock") -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        self._check_size(other)
        return self._components != other._components and all(
            a <= b for a, b in zip(self._components, other._components)
        )

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not (self == other or self < other or other < self)

    def __repr__(self) -> str:
        return "VC%r" % (self._components,)


def _events_in_causal_order(run: UserRun) -> List[Event]:
    return run.partial_order().a_linear_extension()


def assign_vector_clocks(run: UserRun) -> Dict[Event, VectorClock]:
    """Vector clocks for every user event of a (realizable) run.

    Each process ticks its own component at each of its events; a
    delivery additionally merges the send's clock.  The result satisfies
    the characterization theorem ``e ▷ f ⇔ V(e) < V(f)`` (tested over
    exhaustive universes).
    """
    processes = run.processes()
    index_of = {process: i for i, process in enumerate(processes)}
    n = len(processes)
    current = {process: VectorClock.zero(n) for process in processes}
    clocks: Dict[Event, VectorClock] = {}
    for event in _events_in_causal_order(run):
        process = run.process_of_event(event)
        clock = current[process]
        if event.kind is DELIVER:
            send_clock = clocks[Event.send(event.message_id)]
            clock = clock.merge(send_clock)
        clock = clock.tick(index_of[process])
        clocks[event] = clock
        current[process] = clock
    return clocks


def assign_lamport_clocks(run: UserRun) -> Dict[Event, int]:
    """Lamport clocks: ``L(e) = 1 + max`` over causal predecessors.

    Respects causality (``e ▷ f ⇒ L(e) < L(f)``) but, unlike vector
    clocks, cannot detect concurrency.
    """
    order = run.partial_order()
    clocks: Dict[Event, int] = {}
    for event in _events_in_causal_order(run):
        predecessors = order.down_set(event)
        clocks[event] = 1 + max(
            (clocks[p] for p in predecessors), default=0
        )
    return clocks
