"""Systematic model checking of protocol delivery schedules (``repro.mc``).

The paper's claims are universally quantified: a protocol implements a
specification only if *no* adversarial delivery schedule produces a
forbidden instance.  Seeded random simulation samples that schedule
space; this subsystem *exhausts* it (within a budget).  The pieces:

- :mod:`repro.mc.world` -- the controllable scheduler: the simulation's
  own hosts/protocols driven by explicit transitions instead of latency;
- :mod:`repro.mc.explorer` -- stateless DFS over schedules with
  sleep-set (DPOR-style) and state-signature pruning, early violation
  cutoff via :func:`repro.verification.online.first_violation`, and a
  machine-readable :class:`~repro.mc.explorer.MCReport`;
- :mod:`repro.mc.counterexample` -- replayable
  :class:`~repro.mc.counterexample.Schedule` counterexamples with a
  delta-debugging minimizer;
- :mod:`repro.mc.mutations` -- deliberately broken protocol variants the
  checker must catch (the checker's own regression suite);
- :mod:`repro.mc.registry` -- named factories and default specs, shared
  by the ``repro check`` CLI and schedule (de)serialization.

Exploration emits ``mc.schedule`` / ``mc.prune`` / ``mc.violation``
probes on an optional :class:`repro.obs.Bus`, so the observability layer
covers model checking like any other workload.

>>> from repro.mc import check_protocol
>>> from repro.simulation import Workload, SendRequest
>>> pair = Workload(
...     name="pair",
...     n_processes=2,
...     requests=(
...         SendRequest(time=0.0, sender=0, receiver=1),
...         SendRequest(time=1.0, sender=0, receiver=1),
...     ),
... )
>>> check_protocol("fifo", pair, max_schedules=None).verified
True
>>> report = check_protocol("broken-fifo", pair)
>>> [v.first.predicate_name for v in report.violations]
['fifo']
"""

from repro.mc.counterexample import (
    ReplayOutcome,
    Schedule,
    minimize_schedule,
    replay_schedule,
    violation_oracle,
)
from repro.mc.explorer import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_SCHEDULES,
    MCReport,
    MCViolation,
    ModelChecker,
    check_protocol,
)
from repro.mc.mutations import (
    BrokenCausalRstProtocol,
    BrokenFifoProtocol,
    mutation_factories,
)
from repro.mc.registry import (
    default_spec_for,
    flush_pair_workload,
    named_workloads,
    pair_workload,
    protocol_factories,
    resolve_protocol,
    triangle_workload,
    triple_workload,
)
from repro.mc.world import (
    ControlledTransport,
    ControlledWorld,
    ScheduleError,
    StepClock,
    TransitionKey,
    transition_home,
    transitions_dependent,
)

__all__ = [
    "ModelChecker",
    "MCReport",
    "MCViolation",
    "check_protocol",
    "DEFAULT_MAX_SCHEDULES",
    "DEFAULT_MAX_DEPTH",
    "Schedule",
    "ReplayOutcome",
    "replay_schedule",
    "minimize_schedule",
    "violation_oracle",
    "ControlledWorld",
    "ControlledTransport",
    "StepClock",
    "ScheduleError",
    "TransitionKey",
    "transition_home",
    "transitions_dependent",
    "BrokenFifoProtocol",
    "BrokenCausalRstProtocol",
    "mutation_factories",
    "protocol_factories",
    "resolve_protocol",
    "default_spec_for",
    "named_workloads",
    "pair_workload",
    "triple_workload",
    "triangle_workload",
    "flush_pair_workload",
]
