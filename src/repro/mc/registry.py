"""Named protocol factories and default specifications for the checker.

Counterexample schedules serialize a protocol *name*; replay resolves it
here, so a schedule file is self-contained (workload + name + keys).  The
registry is the profiling catalogue plus the deliberately broken mutation
variants of :mod:`repro.mc.mutations`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.predicates.spec import Specification
from repro.simulation.workloads import SendRequest, Workload


def pair_workload() -> Workload:
    """Two same-channel messages 0 -> 1: the minimal FIFO test."""
    return Workload(
        name="mc-pair",
        n_processes=2,
        requests=(
            SendRequest(time=0.0, sender=0, receiver=1),
            SendRequest(time=1.0, sender=0, receiver=1),
        ),
    )


def triple_workload() -> Workload:
    """Three same-channel messages 0 -> 1: the fault-masking benchmark
    (``repro check reliable-fifo --workload triple --fault-budget K``)."""
    return Workload(
        name="mc-triple",
        n_processes=2,
        requests=(
            SendRequest(time=0.0, sender=0, receiver=1),
            SendRequest(time=1.0, sender=0, receiver=1),
            SendRequest(time=2.0, sender=0, receiver=1),
        ),
    )


def triangle_workload() -> Workload:
    """The paper's causal triangle: m1: 0->2, m2: 0->1, m3: 1->2."""
    return Workload(
        name="mc-triangle",
        n_processes=3,
        requests=(
            SendRequest(time=0.0, sender=0, receiver=2),
            SendRequest(time=1.0, sender=0, receiver=1),
            SendRequest(time=2.0, sender=1, receiver=2),
        ),
    )


def flush_pair_workload() -> Workload:
    """Ordinary then red (two-way flush) message on one channel."""
    return Workload(
        name="mc-flush-pair",
        n_processes=2,
        requests=(
            SendRequest(time=0.0, sender=0, receiver=1),
            SendRequest(time=1.0, sender=0, receiver=1, color="red"),
        ),
    )


def named_workloads() -> Dict[str, Callable[[], Workload]]:
    """Deterministic tiny workloads selectable from the CLI by name."""
    return {
        "pair": pair_workload,
        "triple": triple_workload,
        "triangle": triangle_workload,
        "flush-pair": flush_pair_workload,
    }


def protocol_factories() -> Dict[str, Callable[[int, int], object]]:
    """Every named factory the model checker can (re)instantiate.

    Each base name also registers a ``reliable-`` variant: the same
    protocol under the ARQ sublayer (:mod:`repro.protocols.reliable`),
    with a small retry cap so the checker's transition tree stays finite
    (every timer expiry is a transition the adversary may fire at will).
    """
    from repro.mc.mutations import mutation_factories
    from repro.protocols.registry import cached_catalogue
    from repro.protocols.reliable import make_reliable

    registry = {name: entry.factory for name, entry in cached_catalogue().items()}
    registry.update(mutation_factories())
    for name, factory in list(registry.items()):
        registry["reliable-" + name] = make_reliable(
            factory, max_retries=1, retransmit_window=1, send_window=1
        )
    return registry


def resolve_protocol(name: str) -> Callable[[int, int], object]:
    """Look up a factory by name (helpful error on a miss)."""
    registry = protocol_factories()
    if name not in registry:
        raise KeyError(
            "unknown protocol %r; available: %s"
            % (name, ", ".join(sorted(registry)))
        )
    return registry[name]


def default_spec_for(name: str) -> Specification:
    """The specification a named protocol claims to implement.

    Mutation variants are checked against the specification of the
    protocol they break -- that is the point of seeding them.
    """
    from repro.predicates.catalog import CAUSAL_ORDERING, FIFO_ORDERING
    from repro.protocols.registry import cached_catalogue

    table = {name: entry.spec for name, entry in cached_catalogue().items()}
    table.update(
        {
            "broken-fifo": FIFO_ORDERING,
            "broken-causal-rst": CAUSAL_ORDERING,
        }
    )
    # A reliable-wrapped protocol claims exactly what its inner one does:
    # the ARQ sublayer restores the channel, it does not change the spec.
    base = name[len("reliable-") :] if name.startswith("reliable-") else name
    if base not in table:
        raise KeyError(
            "no default specification for %r; pass one explicitly" % (name,)
        )
    return table[base]
