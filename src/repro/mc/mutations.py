"""Deliberately broken protocol variants (mutation seeds).

A model checker earns trust by *finding* planted bugs, not only by
certifying correct protocols.  Each mutation here disables one guard of a
real protocol -- the kind of off-by-one a refactor introduces -- and a
seeded random simulation frequently misses, because the buggy path needs
a specific adversarial reordering.  ``repro check`` must catch every one
of these within its default budget.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.events import Message
from repro.protocols.base import make_factory
from repro.protocols.causal_rst import CausalRstProtocol
from repro.protocols.fifo import FifoProtocol
from repro.simulation.host import HostContext


class BrokenFifoProtocol(FifoProtocol):
    """FIFO that skips the sequence check for one sender's channel.

    Messages from ``unchecked_sender`` are delivered the moment they
    arrive; every other channel still goes through the reorder buffer.
    Under reordering on the unchecked channel the FIFO forbidden
    predicate (``x.s ▷ y.s ∧ y.r ▷ x.r``) fires.
    """

    name = "broken-fifo"

    def __init__(self, unchecked_sender: int = 0) -> None:
        super().__init__()
        self.unchecked_sender = unchecked_sender

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        if message.sender == self.unchecked_sender:
            ctx.deliver(message)
            return
        super().on_user_message(ctx, message, tag)


class BrokenCausalRstProtocol(CausalRstProtocol):
    """RST causal delivery that ignores the matrix for one sender.

    Messages from ``unchecked_sender`` bypass the deliverability test, so
    a message can overtake its causal past when it travels through the
    unchecked channel.
    """

    name = "broken-causal-rst"

    def __init__(self, unchecked_sender: int = 0) -> None:
        super().__init__()
        self.unchecked_sender = unchecked_sender

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        if message.sender == self.unchecked_sender:
            ctx.deliver(message)
            return
        super().on_user_message(ctx, message, tag)


def mutation_factories() -> Dict[str, Callable[[int, int], object]]:
    """The named mutation variants, ready for the checker registry."""
    return {
        "broken-fifo": make_factory(BrokenFifoProtocol),
        "broken-causal-rst": make_factory(BrokenCausalRstProtocol),
    }
