"""Replayable counterexamples: schedules, strict replay, ddmin shrinking.

A violating exploration is captured as a :class:`Schedule` -- the
workload, the protocol's registry name, and the exact transition-key
sequence.  Replaying a schedule rebuilds a fresh
:class:`~repro.mc.world.ControlledWorld` and re-executes the keys, which
reproduces the trace bit-identically (every source of nondeterminism is
either seeded or scheduled).  Schedules serialize through
:mod:`repro.simulation.persistence`, so a counterexample found in CI can
be replayed and inspected locally.

The minimizer is classic delta debugging (Zeller's ddmin) over the key
sequence, followed by a greedy single-removal pass that guarantees
1-minimality: the result still replays strictly and still produces the
*same* first violation (predicate and witness assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.mc.registry import resolve_protocol
from repro.mc.world import (
    ControlledWorld,
    ProtocolFactory,
    ScheduleError,
    TransitionKey,
)
from repro.predicates.spec import Specification
from repro.simulation.workloads import Workload
from repro.verification.online import FirstViolation, first_violation


@dataclass(frozen=True)
class Schedule:
    """A replayable transition sequence for one protocol and workload."""

    protocol: str
    workload: Workload
    keys: Tuple[TransitionKey, ...]
    invoke_order: str = "script"
    # The world's fault budget: drop/dup keys in the sequence only replay
    # when the rebuilt world grants at least as many faults.
    fault_budget: int = 0

    def __len__(self) -> int:
        return len(self.keys)

    def describe(self) -> str:
        """The key sequence as one compact line."""
        return " ".join(
            "%s(%s)" % (key[0], ",".join(str(part) for part in key[1:]))
            for key in self.keys
        )


@dataclass
class ReplayOutcome:
    """What replaying a schedule produced."""

    world: ControlledWorld
    violation: Optional[FirstViolation] = None


def replay_schedule(
    schedule: Schedule,
    spec: Optional[Specification] = None,
    protocol_factory: Optional[ProtocolFactory] = None,
) -> ReplayOutcome:
    """Re-execute a schedule from scratch (strict: every key must be
    enabled in turn) and optionally re-verify it against ``spec``."""
    factory = protocol_factory or resolve_protocol(schedule.protocol)
    world = ControlledWorld(
        factory,
        schedule.workload,
        invoke_order=schedule.invoke_order,
        fault_budget=schedule.fault_budget,
    )
    world.run_schedule(schedule.keys)
    violation = (
        first_violation(world.trace, spec) if spec is not None else None
    )
    return ReplayOutcome(world=world, violation=violation)


def violation_oracle(violation: FirstViolation) -> Tuple:
    """The identity a minimized schedule must preserve: which predicate
    fired, with which witness messages."""
    return (
        violation.predicate_name,
        tuple(sorted(violation.assignment.items())),
    )


def _reproduces(
    keys: Sequence[TransitionKey],
    schedule: Schedule,
    spec: Specification,
    factory: ProtocolFactory,
    oracle: Tuple,
) -> bool:
    candidate = Schedule(
        protocol=schedule.protocol,
        workload=schedule.workload,
        keys=tuple(keys),
        invoke_order=schedule.invoke_order,
        fault_budget=schedule.fault_budget,
    )
    try:
        outcome = replay_schedule(candidate, spec=spec, protocol_factory=factory)
    except ScheduleError:
        return False
    return (
        outcome.violation is not None
        and violation_oracle(outcome.violation) == oracle
    )


def minimize_schedule(
    schedule: Schedule,
    spec: Specification,
    protocol_factory: Optional[ProtocolFactory] = None,
) -> Schedule:
    """Shrink a violating schedule to a 1-minimal violating sequence.

    Three phases: truncate to the violating step (the clock ticks once
    per transition, so the violation time *is* the prefix length), ddmin
    chunk removal, then greedy single-key removal until fixpoint.
    """
    factory = protocol_factory or resolve_protocol(schedule.protocol)
    base = replay_schedule(schedule, spec=spec, protocol_factory=factory)
    if base.violation is None:
        raise ValueError("schedule does not violate the specification")
    oracle = violation_oracle(base.violation)
    keys: List[TransitionKey] = list(schedule.keys)[: int(base.violation.time)]

    def test(candidate: Sequence[TransitionKey]) -> bool:
        return _reproduces(candidate, schedule, spec, factory, oracle)

    assert test(keys)
    keys = _ddmin(keys, test)
    # Greedy 1-minimality pass: drop any single key that is not needed.
    index = 0
    while index < len(keys):
        candidate = keys[:index] + keys[index + 1 :]
        if candidate and test(candidate):
            keys = candidate
        else:
            index += 1
    return Schedule(
        protocol=schedule.protocol,
        workload=schedule.workload,
        keys=tuple(keys),
        invoke_order=schedule.invoke_order,
        fault_budget=schedule.fault_budget,
    )


def _ddmin(
    keys: List[TransitionKey],
    test: Callable[[Sequence[TransitionKey]], bool],
) -> List[TransitionKey]:
    """Delta debugging: remove progressively smaller chunks."""
    granularity = 2
    while len(keys) >= 2:
        chunk = max(1, len(keys) // granularity)
        reduced = False
        start = 0
        while start < len(keys):
            candidate = keys[:start] + keys[start + chunk :]
            if candidate and test(candidate):
                keys = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(len(keys), granularity * 2)
    return keys
