"""The controllable execution world: same hosts and protocols, explicit schedule.

:func:`~repro.simulation.runner.run_simulation` resolves the network's
nondeterminism with seeded latencies; the model checker resolves it
*adversarially*.  A :class:`ControlledWorld` builds the very same
:class:`~repro.simulation.host.ProtocolHost` / \
:class:`~repro.simulation.network.Network` / \
:class:`~repro.simulation.trace.Trace` stack, but virtual time is a step
counter, the transport parks packets instead of scheduling arrivals, and
protocol timers become explicit transitions.  At every point the world
exposes the set of *enabled transitions*; an explorer (or a replayed
schedule) chooses which one executes next.

Transition keys -- stable across replays *and* across commutations of
independent transitions, so they double as schedule serialization format
and as pruning signatures:

``("invoke", p, i)``
    the workload's ``i``-th request executes at its sender ``p``;
``("deliver", s, d, k)``
    delivery of the ``k``-th packet transmitted on channel ``(s, d)``;
``("timer", p, j)``
    the ``j``-th timer created at process ``p`` fires;
``("drop", s, d, k[, n])``
    the adversary destroys that pending packet (fault budget permitting);
``("dup", s, d, k[, n])``
    the adversary duplicates it -- the copy parks under
    ``("deliver", s, d, k, n')`` with a fresh per-packet copy number
    ``n'``, so duplicated (and re-duplicated) deliveries keep stable keys.

Every transition executes at exactly one *home* process (the invoker, the
packet destination, the timer owner).  Transitions with different homes
commute: they read and write disjoint protocol state and append to
disjoint per-process event sequences, so either execution order reaches
the same world state and the same user-view run.

Replays are *deterministic*: rebuilding a world and executing the same
key sequence reproduces the trace bit-identically (every source of
nondeterminism is scheduled).  The explorer's shared
:class:`~repro.verification.engine.SpecMonitor` depends on this -- a
child schedule's trace extends its parent's record for record, so the
monitor can consume only the suffix at each search-tree node.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.events import Message
from repro.simulation.host import ProtocolHost
from repro.simulation.network import Network, Packet, Transport
from repro.simulation.trace import SimulationStats, Trace
from repro.simulation.workloads import Workload
from repro.runs.user_run import UserRun

#: A transition key (one of the three shapes documented above).
TransitionKey = Tuple[Any, ...]

#: The protocol factory shape shared with the simulation runner.
ProtocolFactory = Callable[[int, int], object]

INVOKE_ORDERS = ("script", "free")


class ScheduleError(RuntimeError):
    """A schedule referenced a transition that is not currently enabled."""


def transition_home(key: TransitionKey) -> int:
    """The single process at which a transition executes protocol code.

    Fault transitions are homed at the packet's destination: a drop or a
    duplication conflicts with delivering the same packet (both consume
    or extend the same pending entry), and treating them as dependent on
    everything else at that destination is conservative but sound.
    """
    if key[0] in ("deliver", "drop", "dup"):
        return key[2]
    return key[1]


def _packet_lineage(key: TransitionKey) -> Tuple[Any, ...]:
    """The ``(src, dst, channel_seq)`` triple of the packet (or packet
    copy) a deliver/drop/dup key operates on."""
    return key[1:4]


def transitions_dependent(a: TransitionKey, b: TransitionKey) -> bool:
    """Whether two transitions may fail to commute.

    Non-fault transitions are dependent iff they share a home process
    (they execute protocol code there).  Fault transitions execute *no*
    protocol code -- a drop or dup only mutates one pending entry and the
    shared budget -- so they are dependent on each other (two faults
    racing for the last budget unit do not commute), on deliveries of the
    same packet lineage (both consume or extend the same entry), and on
    nothing else.
    """
    a_fault = a[0] in ("drop", "dup")
    b_fault = b[0] in ("drop", "dup")
    if a_fault and b_fault:
        return True
    if a_fault or b_fault:
        fault, other = (a, b) if a_fault else (b, a)
        return other[0] == "deliver" and _packet_lineage(other) == _packet_lineage(
            fault
        )
    return transition_home(a) == transition_home(b)


class StepClock:
    """A :class:`~repro.simulation.sim.Simulator`-compatible clock whose
    time is the number of executed transitions.

    ``schedule`` calls (protocol timers via ``ctx.schedule``) are captured
    as transitions instead of queued: the model checker is time-abstract,
    so any pending timer may fire whenever the adversary chooses.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._capture: Optional[Callable[[Callable[[], None]], None]] = None

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Capture a protocol timer as a controllable transition."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        assert self._capture is not None
        self._capture(action)


class ControlledTransport(Transport):
    """Parks transmitted packets until the explorer dispatches them."""

    def __init__(self) -> None:
        self.pending: Dict[TransitionKey, Packet] = {}
        # Copies created per base delivery key, so duplicated packets get
        # deterministic extended keys (stable across commutations: the
        # n-th copy of a given packet is always copy n).
        self._dup_counts: Dict[TransitionKey, int] = {}

    def transmit(self, network: Network, packet: Packet) -> Optional[float]:
        """Park the packet under its delivery key; arrival is external."""
        key = ("deliver", packet.src, packet.dst, packet.channel_seq)
        if key in self.pending:
            # Only a FaultyTransport duplicating at transmit time re-parks
            # the same channel slot; treat it as a copy.
            self.pending[self._copy_key(key)] = packet
            return None
        self.pending[key] = packet
        return None

    def _copy_key(self, base: TransitionKey) -> TransitionKey:
        count = self._dup_counts.get(base, 0) + 1
        self._dup_counts[base] = count
        return base + (count,)

    def drop(self, key: TransitionKey) -> Packet:
        """Destroy a pending packet (a fault transition consumed it)."""
        return self.pending.pop(key)

    def duplicate(self, key: TransitionKey) -> TransitionKey:
        """Park a second copy of a pending packet; returns the copy's key."""
        packet = self.pending[key]
        base = key[:4]
        copy_key = self._copy_key(base)
        self.pending[copy_key] = packet
        return copy_key


def _packet_content(packet: Packet) -> Tuple[Any, ...]:
    """A structural signature of what the destination protocol will see."""
    if packet.is_user:
        message = packet.message
        assert message is not None
        return ("user", message.id, repr(packet.tag))
    return ("control", repr(packet.payload))


class ControlledWorld:
    """One execution under explicit scheduling, built from a fresh stack.

    ``invoke_order`` fixes how much of the request script the adversary
    controls: ``"script"`` (the default) keeps each process's invokes in
    workload order (the script is the program; only the network is
    adversarial), while ``"free"`` lets the explorer also permute a
    process's own invokes -- the mode in which the reachable user-view
    runs of the null protocol are exactly the
    :mod:`repro.runs.enumeration` universe.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        workload: Workload,
        invoke_order: str = "script",
        fault_budget: int = 0,
    ):
        if invoke_order not in INVOKE_ORDERS:
            raise ValueError(
                "invoke_order must be one of %r, got %r"
                % (INVOKE_ORDERS, invoke_order)
            )
        if fault_budget < 0:
            raise ValueError("fault_budget must be non-negative")
        self.workload = workload
        self.invoke_order = invoke_order
        self.fault_budget = fault_budget
        self.faults_used = 0
        self.drops_used = 0
        self.clock = StepClock()
        self.clock._capture = self._capture_timer
        self.transport = ControlledTransport()
        self.network = Network(
            self.clock, workload.n_processes, transport=self.transport
        )
        self.trace = Trace(workload.n_processes)
        self.stats = SimulationStats()
        self.steps = 0
        self._timers: Dict[TransitionKey, Callable[[], None]] = {}
        self._timer_counts: List[int] = [0] * workload.n_processes
        # Per-process interaction history: everything the local protocol
        # instance has observed, in order.  Protocols are deterministic
        # functions of this history, which makes it (together with the
        # pending sets) a sound state signature.
        self._histories: List[Tuple[Tuple[Any, ...], ...]] = [
            () for _ in range(workload.n_processes)
        ]
        self._current_process = 0
        self.hosts = [
            ProtocolHost(
                self.clock,
                self.network,
                self.trace,
                self.stats,
                process_id,
                protocol_factory(process_id, workload.n_processes),
            )
            for process_id in range(workload.n_processes)
        ]
        for host in self.hosts:
            self._current_process = host.process_id
            host.start()
        self._invoke_queues: List[List[Tuple[int, Message]]] = [
            [] for _ in range(workload.n_processes)
        ]
        for index, message in enumerate(workload.messages()):
            self._invoke_queues[message.sender].append((index, message))

    # -- timer capture -----------------------------------------------------

    def _capture_timer(self, action: Callable[[], None]) -> None:
        owner = self._current_process
        index = self._timer_counts[owner]
        self._timer_counts[owner] = index + 1
        self._timers[("timer", owner, index)] = action

    # -- the explorer's interface ------------------------------------------

    def enabled(self) -> List[TransitionKey]:
        """Every currently executable transition, in deterministic order."""
        keys: List[TransitionKey] = []
        for process, queue in enumerate(self._invoke_queues):
            if not queue:
                continue
            if self.invoke_order == "script":
                keys.append(("invoke", process, queue[0][0]))
            else:
                keys.extend(("invoke", process, index) for index, _ in queue)
        keys.extend(self.transport.pending.keys())
        if self.faults_used < self.fault_budget:
            for pending_key, packet in self.transport.pending.items():
                keys.append(("drop",) + pending_key[1:])
                # Duplication is enabled for user-message packets whose
                # destination protocol declared it can absorb repeats;
                # anything else would turn a network fault into a
                # host-level ProtocolError.  (Control duplicates reduce to
                # the same protocol-level dedup path and are idempotent by
                # the ARQ construction, so exploring them adds branches
                # without adding behaviours.)
                if packet.is_user and getattr(
                    self.hosts[packet.dst].protocol, "accepts_duplicates", False
                ):
                    keys.append(("dup",) + pending_key[1:])
        for timer_key in self._timers:
            # A protocol that declares its timers pure loss recovery
            # (see ``Protocol.timers_pure_recovery``) keeps them out of
            # the tree until the adversary has actually destroyed a
            # packet: in a loss-free prefix, firing such a timer only
            # produces redundant copies the receiver dedups, so every
            # interleaving it opens reaches an already-covered user run.
            # This is what makes fault-budget exploration of the ARQ
            # sublayer tractable -- without it each armed timer branches
            # the tree at every subsequent step.
            protocol = self.hosts[timer_key[1]].protocol
            if self.drops_used == 0 and getattr(
                protocol, "timers_pure_recovery", False
            ):
                continue
            keys.append(timer_key)
        return sorted(keys)

    def execute(self, key: TransitionKey) -> None:
        """Execute one enabled transition (protocol reactions run inline)."""
        kind = key[0]
        self.steps += 1
        self.clock.now = float(self.steps)
        if kind == "invoke":
            _, process, index = key
            queue = self._invoke_queues[process]
            position = next(
                (pos for pos, (i, _) in enumerate(queue) if i == index), None
            )
            if position is None or (
                self.invoke_order == "script" and position != 0
            ):
                raise ScheduleError("invoke %r is not enabled" % (key,))
            _, message = queue.pop(position)
            self._current_process = process
            self._histories[process] += (("inv", message.id),)
            self.hosts[process].invoke(message)
        elif kind == "deliver":
            packet = self.transport.pending.pop(key, None)
            if packet is None:
                raise ScheduleError("delivery %r is not enabled" % (key,))
            destination = packet.dst
            self._current_process = destination
            self._histories[destination] += (
                ("pkt", packet.src) + _packet_content(packet),
            )
            self.network.handler_for(destination)(packet)
        elif kind == "timer":
            action = self._timers.pop(key, None)
            if action is None:
                raise ScheduleError("timer %r is not enabled" % (key,))
            _, owner, index = key
            self._current_process = owner
            self._histories[owner] += (("timer", index),)
            action()
        elif kind in ("drop", "dup"):
            if self.faults_used >= self.fault_budget:
                raise ScheduleError(
                    "fault %r exceeds the budget of %d" % (key, self.fault_budget)
                )
            pending_key = ("deliver",) + key[1:]
            if pending_key not in self.transport.pending:
                raise ScheduleError("fault %r is not enabled" % (key,))
            if kind == "drop":
                self.transport.drop(pending_key)
                self.drops_used += 1
            else:
                self.transport.duplicate(pending_key)
            self.faults_used += 1
        else:
            raise ScheduleError("unknown transition key %r" % (key,))

    def run_schedule(self, keys) -> None:
        """Execute a sequence of transitions (strict: all must be enabled)."""
        for key in keys:
            self.execute(key)

    # -- state inspection --------------------------------------------------

    def signature(self) -> Tuple[Any, ...]:
        """A structural state signature: equal signatures have identical
        continuations.

        Protocol state is a deterministic function of the per-process
        interaction history; pending packets are identified by channel
        position *and* content (two interleavings can load the same
        channel slot with different tags), timers and remaining invokes
        by their stable keys.  No lossy hashing is involved, so pruning
        on signature equality keeps exhaustive exploration exact.
        """
        pending = frozenset(
            key + _packet_content(packet)
            for key, packet in self.transport.pending.items()
        )
        return (
            tuple(self._histories),
            pending,
            frozenset(self._timers),
            tuple(tuple(i for i, _ in queue) for queue in self._invoke_queues),
            # Fault budget consumed (and copy counters, which name future
            # dup keys): states differing here have different continuations.
            # Drops are counted separately because they gate recovery
            # timers in :meth:`enabled`.
            self.faults_used,
            self.drops_used,
            frozenset(self.transport._dup_counts.items()),
        )

    def is_drained(self) -> bool:
        """Whether no transition is enabled (the execution is maximal).

        Defined on :meth:`enabled` rather than the raw queues: a pure
        loss-recovery timer that is gated out (no drop has occurred) does
        not keep an otherwise-finished execution alive.
        """
        return not self.enabled()

    @property
    def record_count(self) -> int:
        """How many trace records the execution has appended so far (the
        alignment point for an incremental monitor)."""
        return self.trace.record_count

    def user_run(self) -> UserRun:
        """The user's view of the execution so far."""
        return self.trace.to_user_run()

    def protocols(self) -> List[object]:
        """The per-process protocol instances (for blocking reports)."""
        return [host.protocol for host in self.hosts]

    def __repr__(self) -> str:
        return "ControlledWorld(steps=%d, enabled=%d, workload=%r)" % (
            self.steps,
            len(self.enabled()),
            self.workload.name,
        )
