"""The controllable execution world: same hosts and protocols, explicit schedule.

:func:`~repro.simulation.runner.run_simulation` resolves the network's
nondeterminism with seeded latencies; the model checker resolves it
*adversarially*.  A :class:`ControlledWorld` builds the very same
:class:`~repro.simulation.host.ProtocolHost` / \
:class:`~repro.simulation.network.Network` / \
:class:`~repro.simulation.trace.Trace` stack, but virtual time is a step
counter, the transport parks packets instead of scheduling arrivals, and
protocol timers become explicit transitions.  At every point the world
exposes the set of *enabled transitions*; an explorer (or a replayed
schedule) chooses which one executes next.

Transition keys -- stable across replays *and* across commutations of
independent transitions, so they double as schedule serialization format
and as pruning signatures:

``("invoke", p, i)``
    the workload's ``i``-th request executes at its sender ``p``;
``("deliver", s, d, k)``
    delivery of the ``k``-th packet transmitted on channel ``(s, d)``;
``("timer", p, j)``
    the ``j``-th timer created at process ``p`` fires.

Every transition executes at exactly one *home* process (the invoker, the
packet destination, the timer owner).  Transitions with different homes
commute: they read and write disjoint protocol state and append to
disjoint per-process event sequences, so either execution order reaches
the same world state and the same user-view run.

Replays are *deterministic*: rebuilding a world and executing the same
key sequence reproduces the trace bit-identically (every source of
nondeterminism is scheduled).  The explorer's shared
:class:`~repro.verification.engine.SpecMonitor` depends on this -- a
child schedule's trace extends its parent's record for record, so the
monitor can consume only the suffix at each search-tree node.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.events import Message
from repro.simulation.host import ProtocolHost
from repro.simulation.network import Network, Packet, Transport
from repro.simulation.trace import SimulationStats, Trace
from repro.simulation.workloads import Workload
from repro.runs.user_run import UserRun

#: A transition key (one of the three shapes documented above).
TransitionKey = Tuple[Any, ...]

#: The protocol factory shape shared with the simulation runner.
ProtocolFactory = Callable[[int, int], object]

INVOKE_ORDERS = ("script", "free")


class ScheduleError(RuntimeError):
    """A schedule referenced a transition that is not currently enabled."""


def transition_home(key: TransitionKey) -> int:
    """The single process at which a transition executes protocol code."""
    if key[0] == "deliver":
        return key[2]
    return key[1]


def transitions_dependent(a: TransitionKey, b: TransitionKey) -> bool:
    """Whether two transitions may fail to commute (same home process)."""
    return transition_home(a) == transition_home(b)


class StepClock:
    """A :class:`~repro.simulation.sim.Simulator`-compatible clock whose
    time is the number of executed transitions.

    ``schedule`` calls (protocol timers via ``ctx.schedule``) are captured
    as transitions instead of queued: the model checker is time-abstract,
    so any pending timer may fire whenever the adversary chooses.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._capture: Optional[Callable[[Callable[[], None]], None]] = None

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Capture a protocol timer as a controllable transition."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        assert self._capture is not None
        self._capture(action)


class ControlledTransport(Transport):
    """Parks transmitted packets until the explorer dispatches them."""

    def __init__(self) -> None:
        self.pending: Dict[TransitionKey, Packet] = {}

    def transmit(self, network: Network, packet: Packet) -> Optional[float]:
        """Park the packet under its delivery key; arrival is external."""
        key = ("deliver", packet.src, packet.dst, packet.channel_seq)
        self.pending[key] = packet
        return None


def _packet_content(packet: Packet) -> Tuple[Any, ...]:
    """A structural signature of what the destination protocol will see."""
    if packet.is_user:
        message = packet.message
        assert message is not None
        return ("user", message.id, repr(packet.tag))
    return ("control", repr(packet.payload))


class ControlledWorld:
    """One execution under explicit scheduling, built from a fresh stack.

    ``invoke_order`` fixes how much of the request script the adversary
    controls: ``"script"`` (the default) keeps each process's invokes in
    workload order (the script is the program; only the network is
    adversarial), while ``"free"`` lets the explorer also permute a
    process's own invokes -- the mode in which the reachable user-view
    runs of the null protocol are exactly the
    :mod:`repro.runs.enumeration` universe.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        workload: Workload,
        invoke_order: str = "script",
    ):
        if invoke_order not in INVOKE_ORDERS:
            raise ValueError(
                "invoke_order must be one of %r, got %r"
                % (INVOKE_ORDERS, invoke_order)
            )
        self.workload = workload
        self.invoke_order = invoke_order
        self.clock = StepClock()
        self.clock._capture = self._capture_timer
        self.transport = ControlledTransport()
        self.network = Network(
            self.clock, workload.n_processes, transport=self.transport
        )
        self.trace = Trace(workload.n_processes)
        self.stats = SimulationStats()
        self.steps = 0
        self._timers: Dict[TransitionKey, Callable[[], None]] = {}
        self._timer_counts: List[int] = [0] * workload.n_processes
        # Per-process interaction history: everything the local protocol
        # instance has observed, in order.  Protocols are deterministic
        # functions of this history, which makes it (together with the
        # pending sets) a sound state signature.
        self._histories: List[Tuple[Tuple[Any, ...], ...]] = [
            () for _ in range(workload.n_processes)
        ]
        self._current_process = 0
        self.hosts = [
            ProtocolHost(
                self.clock,
                self.network,
                self.trace,
                self.stats,
                process_id,
                protocol_factory(process_id, workload.n_processes),
            )
            for process_id in range(workload.n_processes)
        ]
        for host in self.hosts:
            self._current_process = host.process_id
            host.start()
        self._invoke_queues: List[List[Tuple[int, Message]]] = [
            [] for _ in range(workload.n_processes)
        ]
        for index, message in enumerate(workload.messages()):
            self._invoke_queues[message.sender].append((index, message))

    # -- timer capture -----------------------------------------------------

    def _capture_timer(self, action: Callable[[], None]) -> None:
        owner = self._current_process
        index = self._timer_counts[owner]
        self._timer_counts[owner] = index + 1
        self._timers[("timer", owner, index)] = action

    # -- the explorer's interface ------------------------------------------

    def enabled(self) -> List[TransitionKey]:
        """Every currently executable transition, in deterministic order."""
        keys: List[TransitionKey] = []
        for process, queue in enumerate(self._invoke_queues):
            if not queue:
                continue
            if self.invoke_order == "script":
                keys.append(("invoke", process, queue[0][0]))
            else:
                keys.extend(("invoke", process, index) for index, _ in queue)
        keys.extend(self.transport.pending.keys())
        keys.extend(self._timers.keys())
        return sorted(keys)

    def execute(self, key: TransitionKey) -> None:
        """Execute one enabled transition (protocol reactions run inline)."""
        kind = key[0]
        self.steps += 1
        self.clock.now = float(self.steps)
        if kind == "invoke":
            _, process, index = key
            queue = self._invoke_queues[process]
            position = next(
                (pos for pos, (i, _) in enumerate(queue) if i == index), None
            )
            if position is None or (
                self.invoke_order == "script" and position != 0
            ):
                raise ScheduleError("invoke %r is not enabled" % (key,))
            _, message = queue.pop(position)
            self._current_process = process
            self._histories[process] += (("inv", message.id),)
            self.hosts[process].invoke(message)
        elif kind == "deliver":
            packet = self.transport.pending.pop(key, None)
            if packet is None:
                raise ScheduleError("delivery %r is not enabled" % (key,))
            destination = packet.dst
            self._current_process = destination
            self._histories[destination] += (
                ("pkt", packet.src) + _packet_content(packet),
            )
            self.network.handler_for(destination)(packet)
        elif kind == "timer":
            action = self._timers.pop(key, None)
            if action is None:
                raise ScheduleError("timer %r is not enabled" % (key,))
            _, owner, index = key
            self._current_process = owner
            self._histories[owner] += (("timer", index),)
            action()
        else:
            raise ScheduleError("unknown transition key %r" % (key,))

    def run_schedule(self, keys) -> None:
        """Execute a sequence of transitions (strict: all must be enabled)."""
        for key in keys:
            self.execute(key)

    # -- state inspection --------------------------------------------------

    def signature(self) -> Tuple[Any, ...]:
        """A structural state signature: equal signatures have identical
        continuations.

        Protocol state is a deterministic function of the per-process
        interaction history; pending packets are identified by channel
        position *and* content (two interleavings can load the same
        channel slot with different tags), timers and remaining invokes
        by their stable keys.  No lossy hashing is involved, so pruning
        on signature equality keeps exhaustive exploration exact.
        """
        pending = frozenset(
            key + _packet_content(packet)
            for key, packet in self.transport.pending.items()
        )
        return (
            tuple(self._histories),
            pending,
            frozenset(self._timers),
            tuple(tuple(i for i, _ in queue) for queue in self._invoke_queues),
        )

    def is_drained(self) -> bool:
        """Whether no transition is enabled (the execution is maximal)."""
        return not (
            any(self._invoke_queues) or self.transport.pending or self._timers
        )

    @property
    def record_count(self) -> int:
        """How many trace records the execution has appended so far (the
        alignment point for an incremental monitor)."""
        return self.trace.record_count

    def user_run(self) -> UserRun:
        """The user's view of the execution so far."""
        return self.trace.to_user_run()

    def protocols(self) -> List[object]:
        """The per-process protocol instances (for blocking reports)."""
        return [host.protocol for host in self.hosts]

    def __repr__(self) -> str:
        return "ControlledWorld(steps=%d, enabled=%d, workload=%r)" % (
            self.steps,
            len(self.enabled()),
            self.workload.name,
        )
