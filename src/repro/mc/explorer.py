"""Stateless DFS exploration of delivery schedules, with DPOR-style pruning.

The explorer walks the tree of transition choices of a
:class:`~repro.mc.world.ControlledWorld`.  It is *stateless* in the
model-checking sense: a tree node is its schedule prefix, re-executed from
scratch on visit (executions are cheap at checking scale, and the replay
machinery doubles as the counterexample format).  Three prunings keep the
tree tractable without losing any reachable user-view run:

sleep sets
    after fully exploring child ``t``, siblings explored later carry
    ``t`` in their sleep set until a *dependent* transition (same home
    process, see :func:`~repro.mc.world.transitions_dependent`) executes;
    a sleeping transition would only recreate an already-explored
    interleaving of independent transitions.

state-signature caching
    two prefixes with equal :meth:`~repro.mc.world.ControlledWorld.signature`
    have identical continuations, so the second is explored only if its
    sleep set would explore *more* branches than every earlier visit
    (the classic sleep-set/state-cache soundness condition: prune only
    when some earlier visit slept on a subset of what we would sleep on).

violation pruning
    every prefix is checked incrementally by a shared
    :class:`repro.verification.engine.SpecMonitor` carried along the DFS
    with ``push()``/``pop()`` snapshots: replays are deterministic, so a
    child's trace extends its parent's bit-for-bit and the monitor only
    consumes each node's new suffix instead of re-checking the full trace
    per state; a violating prefix is recorded as a counterexample and
    never extended (all extensions contain the same forbidden instance).

With no violation found, no depth truncation and no budget exhaustion the
run is a *proof*: every maximal schedule (up to commutation of
independent transitions) was covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.mc.counterexample import (
    Schedule,
    minimize_schedule,
    replay_schedule,
)
from repro.mc.registry import default_spec_for, resolve_protocol
from repro.mc.world import (
    ControlledWorld,
    ProtocolFactory,
    TransitionKey,
    transitions_dependent,
)
from repro.obs.bus import Bus
from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.runs.user_run import UserRun
from repro.simulation.workloads import Workload
from repro.verification.engine import SpecMonitor
from repro.verification.online import FirstViolation

#: Default exploration budget of ``repro check``.
DEFAULT_MAX_SCHEDULES = 2000
DEFAULT_MAX_DEPTH = 80


class _BudgetExhausted(Exception):
    """Internal control flow: the schedule budget ran out."""


class _EnoughViolations(Exception):
    """Internal control flow: ``max_violations`` counterexamples found."""


@dataclass
class MCViolation:
    """One counterexample: the violating schedule and what it violates."""

    schedule: Schedule
    first: FirstViolation
    minimized: Optional[Schedule] = None
    #: Watchdog diagnoses of messages still undelivered when the violation
    #: fired, refined by each protocol's ``blocking_reason`` hook.
    stuck: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """A short human-readable account of the counterexample."""
        best = self.minimized or self.schedule
        return "%s via %d-step schedule: %s" % (
            self.first,
            len(best),
            best.describe(),
        )


@dataclass
class MCReport:
    """Everything one model-checking run established."""

    protocol: str
    specification: str
    workload: str
    invoke_order: str
    max_schedules: Optional[int]
    max_depth: int
    fault_budget: int = 0
    #: Transitions of the fixed stem the search was seeded with (a
    #: recorded run handed over by :func:`repro.wal.explore_from_log`).
    prefix_length: int = 0
    schedules_explored: int = 0
    replays: int = 0
    transitions: int = 0
    depth_truncations: int = 0
    pruned_sleep: int = 0
    pruned_state: int = 0
    budget_exhausted: bool = False
    stopped_at_max_violations: bool = False
    distinct_complete_runs: int = 0
    #: Wall-clock seconds spent inside the verification monitor.
    verify_seconds: float = 0.0
    #: User events (sends/deliveries) the monitor checked incrementally.
    verify_events: int = 0
    #: Anchored predicate searches the monitor ran.
    verify_searches: int = 0
    violations: List[MCViolation] = field(default_factory=list)

    @property
    def exhaustive(self) -> bool:
        """Whether the whole (pruned-equivalent) schedule tree was covered."""
        return not (
            self.budget_exhausted
            or self.depth_truncations
            or self.stopped_at_max_violations
        )

    @property
    def verified(self) -> bool:
        """Exhaustive coverage with zero violations: a bounded proof."""
        return self.exhaustive and not self.violations

    def summary(self) -> str:
        """A short human-readable result block."""
        if self.violations:
            verdict = "VIOLATED (%d counterexample%s)" % (
                len(self.violations),
                "" if len(self.violations) == 1 else "s",
            )
        elif self.verified:
            verdict = "VERIFIED (exhaustive within depth %d)" % self.max_depth
        else:
            verdict = "NO VIOLATION FOUND (budget exhausted, not a proof)"
        lines = [
            "protocol:          %s" % self.protocol,
            "specification:     %s" % self.specification,
            "workload:          %s" % self.workload,
            "fault budget:      %d" % self.fault_budget,
            "verdict:           %s" % verdict,
            "schedules:         %d explored (%d complete runs distinct)"
            % (self.schedules_explored, self.distinct_complete_runs),
            "transitions:       %d executed over %d replays"
            % (self.transitions, self.replays),
            "pruned:            %d sleep-set, %d state-cache, %d depth-truncated"
            % (self.pruned_sleep, self.pruned_state, self.depth_truncations),
            "verification:      %.3fs over %d events (%d predicate searches)"
            % (self.verify_seconds, self.verify_events, self.verify_searches),
        ]
        for violation in self.violations:
            lines.append("counterexample:    %s" % violation.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A machine-readable report (JSON-serializable)."""
        from repro.simulation.persistence import schedule_to_dict

        return {
            "format": "repro-mc-report-v1",
            "protocol": self.protocol,
            "specification": self.specification,
            "workload": self.workload,
            "invoke_order": self.invoke_order,
            "budget": {
                "max_schedules": self.max_schedules,
                "max_depth": self.max_depth,
                "fault_budget": self.fault_budget,
            },
            "schedules_explored": self.schedules_explored,
            "replays": self.replays,
            "transitions": self.transitions,
            "depth_truncations": self.depth_truncations,
            "pruned_sleep": self.pruned_sleep,
            "pruned_state": self.pruned_state,
            "distinct_complete_runs": self.distinct_complete_runs,
            "verification": {
                "seconds": self.verify_seconds,
                "events": self.verify_events,
                "searches": self.verify_searches,
            },
            "exhaustive": self.exhaustive,
            "verified": self.verified,
            "violations": [
                {
                    "predicate": violation.first.predicate_name,
                    "assignment": dict(violation.first.assignment),
                    "event": repr(violation.first.event),
                    "stuck": list(violation.stuck),
                    "schedule": schedule_to_dict(violation.schedule),
                    "minimized": (
                        schedule_to_dict(violation.minimized)
                        if violation.minimized is not None
                        else None
                    ),
                }
                for violation in self.violations
            ],
        }


class ModelChecker:
    """Systematic exploration of one protocol against one specification."""

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        workload: Workload,
        spec: Union[Specification, ForbiddenPredicate],
        protocol_name: Optional[str] = None,
        invoke_order: str = "script",
        fault_budget: int = 0,
        max_schedules: Optional[int] = DEFAULT_MAX_SCHEDULES,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_violations: int = 1,
        use_sleep_sets: bool = True,
        use_state_cache: bool = True,
        minimize: bool = True,
        collect_runs: bool = False,
        bus: Optional[Bus] = None,
        prefix: Optional[Sequence[TransitionKey]] = None,
    ):
        self.factory = protocol_factory
        self.workload = workload
        self.spec = (
            spec
            if isinstance(spec, Specification)
            else Specification(name=spec.name or "anonymous", predicates=(spec,))
        )
        self.protocol_name = protocol_name or getattr(
            protocol_factory(0, workload.n_processes), "name", "custom"
        )
        self.invoke_order = invoke_order
        self.fault_budget = fault_budget
        self.max_schedules = max_schedules
        self.max_depth = max_depth
        self.max_violations = max_violations
        self.use_sleep_sets = use_sleep_sets
        self.use_state_cache = use_state_cache
        self.minimize = minimize
        self.collect_runs = collect_runs
        self.bus = bus
        #: A fixed schedule stem (e.g. a recorded production run): the
        #: DFS replays it verbatim and explores only its continuations.
        #: The stem itself is checked too -- a violation *inside* the
        #: recording surfaces at the root node.
        self.prefix: List[TransitionKey] = [
            tuple(key) for key in (prefix or [])
        ]
        # The depth budget bounds the *continuation*, not the stem: a
        # long recording must not eat the whole search allowance.
        self.max_depth += len(self.prefix)
        #: Complete (drained) user-view runs reached, when ``collect_runs``.
        self.complete_runs: Set[UserRun] = set()
        self._run_signatures: Set[Tuple] = set()
        self._visited: Dict[Tuple, List[FrozenSet[TransitionKey]]] = {}
        self._report: Optional[MCReport] = None
        self._monitor: Optional[SpecMonitor] = None

    # -- public entry ------------------------------------------------------

    def run(self) -> MCReport:
        """Explore, then minimize any counterexamples found."""
        report = MCReport(
            protocol=self.protocol_name,
            specification=self.spec.name,
            workload=self.workload.name,
            invoke_order=self.invoke_order,
            max_schedules=self.max_schedules,
            max_depth=self.max_depth,
            fault_budget=self.fault_budget,
            prefix_length=len(self.prefix),
        )
        self._report = report
        self._visited.clear()
        self.complete_runs.clear()
        self._run_signatures.clear()
        # One monitor for the whole search tree: pushed/popped along the
        # DFS so each node only verifies its new trace suffix.
        self._monitor = SpecMonitor(self.spec, bus=self.bus)
        try:
            self._explore(list(self.prefix), frozenset())
        except _BudgetExhausted:
            report.budget_exhausted = True
        except _EnoughViolations:
            report.stopped_at_max_violations = True
        report.distinct_complete_runs = len(self._run_signatures)
        report.verify_events = self._monitor.stats.events_checked
        report.verify_searches = self._monitor.stats.searches
        if self.minimize:
            for violation in report.violations:
                violation.minimized = minimize_schedule(
                    violation.schedule, self.spec, protocol_factory=self.factory
                )
        return report

    # -- exploration -------------------------------------------------------

    def _replay(self, prefix: List[TransitionKey]) -> ControlledWorld:
        world = ControlledWorld(
            self.factory,
            self.workload,
            invoke_order=self.invoke_order,
            fault_budget=self.fault_budget,
        )
        world.run_schedule(prefix)
        report = self._report
        assert report is not None
        report.replays += 1
        report.transitions += len(prefix)
        return world

    def _leaf(self, depth: int, outcome: str) -> None:
        report = self._report
        assert report is not None
        report.schedules_explored += 1
        if self.bus is not None and self.bus.active:
            self.bus.emit(
                "mc.schedule",
                float(depth),
                index=report.schedules_explored,
                depth=depth,
                outcome=outcome,
            )
        if (
            self.max_schedules is not None
            and report.schedules_explored >= self.max_schedules
        ):
            raise _BudgetExhausted()

    def _explore(
        self, prefix: List[TransitionKey], sleep: FrozenSet[TransitionKey]
    ) -> None:
        report = self._report
        monitor = self._monitor
        assert report is not None and monitor is not None
        world = self._replay(prefix)
        # Deterministic replay: the fresh world's trace extends what the
        # monitor consumed at the parent node record for record.
        assert monitor.consumed <= world.record_count
        frame = monitor.push()
        try:
            started = perf_counter()
            violation = monitor.advance(world.trace)
            report.verify_seconds += perf_counter() - started
            self._explore_checked(prefix, sleep, world, violation)
        finally:
            monitor.pop(frame)

    def _explore_checked(
        self,
        prefix: List[TransitionKey],
        sleep: FrozenSet[TransitionKey],
        world: ControlledWorld,
        violation: Optional[FirstViolation],
    ) -> None:
        report = self._report
        assert report is not None
        if violation is not None:
            schedule = Schedule(
                protocol=self.protocol_name,
                workload=self.workload,
                keys=tuple(prefix),
                invoke_order=self.invoke_order,
                fault_budget=self.fault_budget,
            )
            from repro.obs.watchdog import Watchdog

            stuck = Watchdog.from_trace(world.trace).stuck(
                protocols=world.protocols()
            )
            report.violations.append(
                MCViolation(
                    schedule=schedule,
                    first=violation,
                    stuck=[entry.describe() for entry in stuck],
                )
            )
            if self.bus is not None and self.bus.active:
                self.bus.emit(
                    "mc.violation",
                    float(len(prefix)),
                    predicate=violation.predicate_name,
                    assignment=dict(violation.assignment),
                    depth=len(prefix),
                )
            self._leaf(len(prefix), "violation")
            if len(report.violations) >= self.max_violations:
                raise _EnoughViolations()
            return
        enabled = world.enabled()
        if not enabled:
            run = world.user_run()
            self._run_signatures.add(run.canonical_form())
            if self.collect_runs:
                self.complete_runs.add(run)
            self._leaf(len(prefix), "complete")
            return
        if len(prefix) >= self.max_depth:
            report.depth_truncations += 1
            self._leaf(len(prefix), "truncated")
            return
        if self.use_state_cache:
            signature = world.signature()
            earlier = self._visited.get(signature)
            if earlier is not None and any(s <= sleep for s in earlier):
                report.pruned_state += 1
                if self.bus is not None and self.bus.active:
                    self.bus.emit(
                        "mc.prune",
                        float(len(prefix)),
                        reason="state",
                        depth=len(prefix),
                    )
                return
            self._visited.setdefault(signature, []).append(sleep)
        asleep: Set[TransitionKey] = set(sleep)
        for key in enabled:
            if self.use_sleep_sets and key in asleep:
                report.pruned_sleep += 1
                if self.bus is not None and self.bus.active:
                    self.bus.emit(
                        "mc.prune",
                        float(len(prefix)),
                        reason="sleep",
                        depth=len(prefix),
                    )
                continue
            child_sleep = frozenset(
                s for s in asleep if not transitions_dependent(s, key)
            )
            self._explore(prefix + [key], child_sleep)
            asleep.add(key)


def check_protocol(
    protocol: Union[str, ProtocolFactory],
    workload: Workload,
    spec: Optional[Union[Specification, ForbiddenPredicate]] = None,
    **options: Any,
) -> MCReport:
    """One-call model check: resolve names, explore, minimize.

    ``protocol`` is a registry name (``"fifo"``, ``"broken-fifo"``, ...)
    or a factory; with a name and no ``spec`` the protocol's own
    specification is used.  Remaining options go to :class:`ModelChecker`.
    """
    if isinstance(protocol, str):
        factory = resolve_protocol(protocol)
        options.setdefault("protocol_name", protocol)
        if spec is None:
            spec = default_spec_for(protocol)
    else:
        factory = protocol
    if spec is None:
        raise ValueError("a specification is required for a custom factory")
    checker = ModelChecker(factory, workload, spec, **options)
    return checker.run()
