"""Deterministic discrete-event simulation substrate.

The paper assumes an asynchronous reliable network: messages take
arbitrary finite time and may be reordered.  The simulator reproduces that
adversary deterministically from a seed, runs one protocol instance per
process, and records the execution as a :class:`~repro.runs.SystemRun`
(and its user view) so recorded behaviour can be checked against
specifications.
"""

from repro.simulation.sim import Simulator
from repro.simulation.network import (
    AlternatingLatency,
    FixedLatency,
    LatencyModel,
    LatencyTransport,
    Network,
    Packet,
    ScriptedLatency,
    TargetedSlowChannel,
    Transport,
    UniformLatency,
)
from repro.simulation.trace import SimulationStats, Trace, estimate_size
from repro.simulation.host import HostContext, ProtocolError, ProtocolHost
from repro.simulation.workloads import (
    SendRequest,
    Workload,
    broadcast_storm,
    client_server,
    mobile_handoff_scenario,
    pipeline_chain,
    random_traffic,
    red_marker_stream,
    ring_traffic,
)
from repro.simulation.runner import SimulationResult, run_simulation

__all__ = [
    "Simulator",
    "Network",
    "Packet",
    "Transport",
    "LatencyTransport",
    "LatencyModel",
    "UniformLatency",
    "FixedLatency",
    "AlternatingLatency",
    "TargetedSlowChannel",
    "ScriptedLatency",
    "Trace",
    "SimulationStats",
    "estimate_size",
    "HostContext",
    "ProtocolHost",
    "ProtocolError",
    "SendRequest",
    "Workload",
    "random_traffic",
    "ring_traffic",
    "client_server",
    "broadcast_storm",
    "red_marker_stream",
    "mobile_handoff_scenario",
    "pipeline_chain",
    "SimulationResult",
    "run_simulation",
]
