"""Execution traces and statistics.

Every system event (invoke/send/receive/deliver) is recorded with its
virtual time and a global sequence number; the trace converts losslessly
to a :class:`~repro.runs.SystemRun` whose per-process sequences follow
recording order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.events import DELIVER, INVOKE, RECEIVE, SEND, Event, Message
from repro.runs.system_run import SystemRun
from repro.runs.user_run import UserRun


def estimate_size(obj: Any) -> int:
    """A platform-independent byte estimate for tags and control payloads.

    Integers and floats cost 8 bytes, strings and bytes their length,
    booleans and ``None`` one byte; containers add 8 bytes of overhead plus
    their contents.  This deliberately models wire size, not CPython
    object size.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if isinstance(obj, dict):
        return 8 + sum(estimate_size(k) + estimate_size(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in obj)
    if isinstance(obj, Message):
        return 16 + estimate_size(obj.id) + estimate_size(obj.color)
    if hasattr(obj, "__dict__"):
        return 8 + estimate_size(vars(obj))
    return 8


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile; 0 on an empty list."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100], got %r" % p)
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class TraceRecord:
    """One recorded system event."""

    time: float
    sequence: int
    process: int
    event: Event


@dataclass
class SimulationStats:
    """Aggregate protocol costs measured during a run."""

    user_messages: int = 0
    control_messages: int = 0
    control_bytes: int = 0
    tag_bytes_total: int = 0
    max_tag_bytes: int = 0
    deliveries: int = 0
    delayed_deliveries: int = 0  # deliveries not executed at receive time
    delivery_latencies: List[float] = field(default_factory=list)  # send -> deliver
    end_to_end_latencies: List[float] = field(default_factory=list)  # invoke -> deliver
    # Fault/recovery accounting (repro.faults + repro.protocols.reliable).
    retransmissions: int = 0  # packets re-sent by an ARQ sublayer
    duplicate_receives: int = 0  # repeat arrivals routed to on_duplicate
    packets_dropped: int = 0  # random/scripted drops
    packets_duplicated: int = 0  # random/scripted duplications
    partition_drops: int = 0  # drops caused by a partition window
    crash_drops: int = 0  # packets blackholed at a crashed process
    crashes: int = 0
    restarts: int = 0

    @property
    def mean_tag_bytes(self) -> float:
        return self.tag_bytes_total / self.user_messages if self.user_messages else 0.0

    @property
    def mean_delivery_latency(self) -> float:
        if not self.delivery_latencies:
            return 0.0
        return sum(self.delivery_latencies) / len(self.delivery_latencies)

    @property
    def max_delivery_latency(self) -> float:
        return max(self.delivery_latencies) if self.delivery_latencies else 0.0

    def delivery_latency_percentile(self, p: float) -> float:
        """The nearest-rank ``p``-th percentile of send->deliver latency."""
        return _percentile(self.delivery_latencies, p)

    @property
    def mean_end_to_end_latency(self) -> float:
        """Invoke-to-delivery time: includes send inhibition, which is
        where the logically synchronous protocols pay."""
        if not self.end_to_end_latencies:
            return 0.0
        return sum(self.end_to_end_latencies) / len(self.end_to_end_latencies)

    def control_per_user_message(self) -> float:
        """Control messages per user message sent."""
        return self.control_messages / self.user_messages if self.user_messages else 0.0

    @property
    def goodput(self) -> float:
        """Deliveries per transmission attempt (releases + retransmissions).

        1.0 on a reliable network; every retransmission a fault forces
        lowers it, which is the "cost of recovery" the benchmarks track.
        """
        attempts = self.user_messages + self.retransmissions
        return self.deliveries / attempts if attempts else 0.0


class Trace:
    """Append-only record of the system events of one simulation."""

    def __init__(self, n_processes: int):
        self.n_processes = n_processes
        self._records: List[TraceRecord] = []
        self._messages: Dict[str, Message] = {}
        self._times: Dict[Event, float] = {}
        self._sequence = 0
        self._taps: List[Any] = []

    def attach_tap(self, tap) -> None:
        """Stream every *future* record to ``tap(record, message)``.

        Taps observe, they cannot veto; replaying history to a
        late-attaching consumer is the caller's job (see
        :meth:`repro.net.host.NetHost._attach_observer` and the WAL sink,
        which both attach before traffic starts or replay first).
        """
        self._taps.append(tap)

    def register_message(self, message: Message) -> None:
        """Declare a message of the run (idempotent; conflicts rejected)."""
        existing = self._messages.get(message.id)
        if existing is not None and existing != message:
            raise ValueError("conflicting registration for message %r" % message.id)
        self._messages[message.id] = message

    def record(self, time: float, process: int, event: Event) -> None:
        """Append the execution of ``event`` at ``process``."""
        if event.message_id not in self._messages:
            raise ValueError("event %r for unregistered message" % (event,))
        if event in self._times:
            raise ValueError("event %r recorded twice" % (event,))
        self._records.append(
            TraceRecord(time=time, sequence=self._sequence, process=process, event=event)
        )
        self._times[event] = time
        self._sequence += 1
        if self._taps:
            record = self._records[-1]
            message = self._messages[event.message_id]
            for tap in self._taps:
                tap(record, message)

    # Queries --------------------------------------------------------------

    def records(self) -> List[TraceRecord]:
        """All records in execution order."""
        return list(self._records)

    def records_since(self, index: int) -> List[TraceRecord]:
        """The records appended after the first ``index`` (for incremental
        consumers such as :class:`repro.verification.engine.SpecMonitor`)."""
        return self._records[index:]

    @property
    def record_count(self) -> int:
        """How many records have been appended (no list copy)."""
        return len(self._records)

    def messages(self) -> List[Message]:
        """The registered messages, sorted by id."""
        return [self._messages[mid] for mid in sorted(self._messages)]

    def message(self, message_id: str) -> Optional[Message]:
        """The registered message with this id, or ``None``."""
        return self._messages.get(message_id)

    def has_event(self, event: Event) -> bool:
        """Whether ``event`` was recorded."""
        return event in self._times

    def time_of(self, event: Event) -> float:
        """The virtual time at which ``event`` executed."""
        return self._times[event]

    def __len__(self) -> int:
        return len(self._records)

    # Conversions ------------------------------------------------------------

    def to_system_run(self) -> SystemRun:
        """The trace as a :class:`SystemRun` (lossless)."""
        run = SystemRun(self.n_processes, self.messages())
        for record in self._records:
            run.append(record.process, record.event)
        return run

    def to_user_run(self) -> UserRun:
        """The trace's user view (projection of the system run)."""
        return self.to_system_run().users_view()

    def undelivered_messages(self) -> List[str]:
        """Invoked messages that never reached delivery (liveness check)."""
        stuck = []
        for message_id in sorted(self._messages):
            invoked = Event.invoke(message_id) in self._times
            delivered = Event.deliver(message_id) in self._times
            if invoked and not delivered:
                stuck.append(message_id)
        return stuck
