"""Seeded workload generators.

A workload is a list of timed send requests (the user's ``x.s*`` events).
Generators cover the traffic patterns the paper's motivating applications
imply: uniform random traffic, rings, client-server request/reply shapes,
broadcast fan-out, red-marker (flush) streams, pipelines, and the §6
mobile-handoff scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.events import Message


@dataclass(frozen=True)
class SendRequest:
    """One application-level send request at a given virtual time."""

    time: float
    sender: int
    receiver: int
    color: Optional[str] = None
    group: Optional[str] = None  # broadcast group (repro.broadcast)
    payload: object = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("request time must be non-negative")


@dataclass(frozen=True)
class Workload:
    """A named scenario: process count plus a timed request script."""

    name: str
    n_processes: int
    requests: tuple

    def __post_init__(self) -> None:
        for request in self.requests:
            if not (0 <= request.sender < self.n_processes):
                raise ValueError("request sender out of range: %r" % (request,))
            if not (0 <= request.receiver < self.n_processes):
                raise ValueError("request receiver out of range: %r" % (request,))

    @property
    def message_count(self) -> int:
        return len(self.requests)

    def messages(self) -> List[Message]:
        """Materialize the requests as messages ``m1..mk`` (request order)."""
        return [
            Message(
                id="m%d" % (i + 1),
                sender=request.sender,
                receiver=request.receiver,
                color=request.color,
                group=request.group,
                payload=request.payload,
            )
            for i, request in enumerate(self.requests)
        ]


def _spread(count: int, rate: float, rng: random.Random) -> List[float]:
    """Poisson-ish arrival times with mean inter-arrival ``1/rate``."""
    times = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(rate)
        times.append(t)
    return times


def random_traffic(
    n_processes: int,
    count: int,
    seed: int = 0,
    rate: float = 1.0,
    color_every: Optional[int] = None,
    color: str = "red",
) -> Workload:
    """Uniform random point-to-point traffic.

    ``color_every`` colours every k-th message (for marker specifications).
    """
    if n_processes < 2:
        raise ValueError("random traffic needs at least two processes")
    rng = random.Random(seed)
    requests = []
    for i, time in enumerate(_spread(count, rate, rng)):
        sender = rng.randrange(n_processes)
        receiver = rng.randrange(n_processes - 1)
        if receiver >= sender:
            receiver += 1
        message_color = (
            color if color_every and (i + 1) % color_every == 0 else None
        )
        requests.append(
            SendRequest(time=time, sender=sender, receiver=receiver, color=message_color)
        )
    return Workload(
        name="random-%dp-%dm-seed%d" % (n_processes, count, seed),
        n_processes=n_processes,
        requests=tuple(requests),
    )


def ring_traffic(n_processes: int, rounds: int, seed: int = 0) -> Workload:
    """Each process sends to its ring successor, ``rounds`` times."""
    rng = random.Random(seed)
    requests = []
    t = 0.0
    for _ in range(rounds):
        for sender in range(n_processes):
            t += rng.uniform(0.1, 1.0)
            requests.append(
                SendRequest(time=t, sender=sender, receiver=(sender + 1) % n_processes)
            )
    return Workload(
        name="ring-%dp-%dr" % (n_processes, rounds),
        n_processes=n_processes,
        requests=tuple(requests),
    )


def client_server(
    n_clients: int, requests_per_client: int, seed: int = 0
) -> Workload:
    """Clients 1..n send to server 0; the server replies to each client.

    (The reply is modelled as an independent user message; reply causality
    emerges from the server's process order.)
    """
    rng = random.Random(seed)
    n_processes = n_clients + 1
    script: List[SendRequest] = []
    t = 0.0
    for _ in range(requests_per_client):
        for client in range(1, n_processes):
            t += rng.uniform(0.1, 1.0)
            script.append(SendRequest(time=t, sender=client, receiver=0))
            script.append(
                SendRequest(time=t + rng.uniform(0.5, 2.0), sender=0, receiver=client)
            )
    script.sort(key=lambda r: r.time)
    return Workload(
        name="client-server-%dc-%dr" % (n_clients, requests_per_client),
        n_processes=n_processes,
        requests=tuple(script),
    )


def broadcast_storm(n_processes: int, rounds: int, seed: int = 0) -> Workload:
    """Every round one process sends to every other process back-to-back.

    This is the classic causal-broadcast stressor: with reordering, late
    copies of an early broadcast race later broadcasts.
    """
    rng = random.Random(seed)
    requests = []
    t = 0.0
    for round_index in range(rounds):
        origin = round_index % n_processes
        t += rng.uniform(0.5, 1.5)
        for receiver in range(n_processes):
            if receiver != origin:
                requests.append(SendRequest(time=t, sender=origin, receiver=receiver))
    return Workload(
        name="broadcast-%dp-%dr" % (n_processes, rounds),
        n_processes=n_processes,
        requests=tuple(requests),
    )


def red_marker_stream(
    n_messages: int, marker_every: int = 5, seed: int = 0
) -> Workload:
    """A single channel 0 → 1 carrying ordinary traffic with periodic red
    marker (flush) messages -- the F-channel workload."""
    rng = random.Random(seed)
    requests = []
    t = 0.0
    for i in range(n_messages):
        t += rng.uniform(0.1, 0.6)
        color = "red" if (i + 1) % marker_every == 0 else None
        requests.append(SendRequest(time=t, sender=0, receiver=1, color=color))
    return Workload(
        name="red-marker-%dm-every%d" % (n_messages, marker_every),
        n_processes=2,
        requests=tuple(requests),
    )


def mobile_handoff_scenario(
    n_stations: int = 3, messages_per_phase: int = 4, seed: int = 0
) -> Workload:
    """§6: a mobile unit (process 0) roams across base stations (1..n).

    Between handoffs the mobile exchanges ordinary traffic with its current
    station; each handoff message (coloured ``"handoff"``) moves it to the
    next station.  The specification demands that no ordinary message cross
    a handoff.
    """
    rng = random.Random(seed)
    n_processes = n_stations + 1
    requests: List[SendRequest] = []
    t = 0.0
    for station in range(1, n_stations + 1):
        for _ in range(messages_per_phase):
            t += rng.uniform(0.2, 1.0)
            if rng.random() < 0.5:
                requests.append(SendRequest(time=t, sender=0, receiver=station))
            else:
                requests.append(SendRequest(time=t, sender=station, receiver=0))
        if station < n_stations:
            t += rng.uniform(0.2, 1.0)
            requests.append(
                SendRequest(
                    time=t, sender=0, receiver=station, color="handoff"
                )
            )
    return Workload(
        name="mobile-handoff-%dst-%dm" % (n_stations, messages_per_phase),
        n_processes=n_processes,
        requests=tuple(requests),
    )


def pipeline_chain(n_processes: int, items: int, seed: int = 0) -> Workload:
    """Items flow 0 → 1 → ... → n-1 (each stage forwards downstream)."""
    rng = random.Random(seed)
    requests = []
    t = 0.0
    for _ in range(items):
        t += rng.uniform(0.3, 1.0)
        stage_time = t
        for stage in range(n_processes - 1):
            requests.append(
                SendRequest(time=stage_time, sender=stage, receiver=stage + 1)
            )
            stage_time += rng.uniform(0.5, 2.0)
    requests.sort(key=lambda r: r.time)
    return Workload(
        name="pipeline-%dp-%di" % (n_processes, items),
        n_processes=n_processes,
        requests=tuple(requests),
    )
