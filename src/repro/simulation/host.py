"""Per-process protocol hosting.

The host is the boundary the paper draws around inhibitory protocols: the
application *requests* (invoke), the protocol decides when to *release*
(send) and when to *deliver*; arrivals (receive) cannot be refused.  The
host enforces the event preconditions and records everything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Set

from repro.events import Event, Message
from repro.simulation.network import Network, Packet
from repro.simulation.sim import Simulator
from repro.simulation.trace import SimulationStats, Trace, estimate_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs depends on us)
    from repro.obs.bus import Bus


class ProtocolError(RuntimeError):
    """A protocol violated an event precondition (a bug in the protocol)."""


class HostContext:
    """The services a protocol may use, scoped to one process."""

    def __init__(self, host: "ProtocolHost"):
        self._host = host

    @property
    def process_id(self) -> int:
        return self._host.process_id

    @property
    def n_processes(self) -> int:
        return self._host.n_processes

    @property
    def now(self) -> float:
        return self._host.sim.now

    def release(self, message: Message, tag: Any = None) -> None:
        """Execute the send event ``x.s`` (the message enters the network)."""
        self._host.release(message, tag)

    def deliver(self, message: Message) -> None:
        """Execute the delivery event ``x.r``."""
        self._host.deliver(message)

    def send_control(self, dst: int, payload: Any) -> None:
        """Emit a protocol control message (general protocols only)."""
        self._host.send_control(dst, payload)

    def retransmit(self, message: Message, tag: Any = None) -> None:
        """Re-transmit an already-sent user message (no new send event).

        The ARQ sublayer's recovery path: the paper's ``x.s`` happened at
        the original release, so a retransmission is pure network traffic
        -- accounted as such, never re-recorded in the trace.
        """
        self._host.retransmit_user(message, tag)

    def retransmit_control(self, dst: int, payload: Any) -> None:
        """Re-transmit a control message, accounted as retransmission."""
        self._host.retransmit_control(dst, payload)

    def schedule(self, delay: float, action) -> None:
        """Run ``action`` after ``delay`` virtual time units.

        Timers are *volatile*: one scheduled before a crash of this
        process never fires (see :mod:`repro.faults`).
        """
        self._host.schedule_timer(delay, action)

    def emit(self, probe: str, **data: Any) -> None:
        """Emit a protocol-level probe on the host's bus (no-op without
        subscribers); the host adds the virtual time and process id."""
        self._host.emit_probe(probe, **data)


class ProtocolHost:
    """Runs one protocol instance at one process and records its events."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        stats: SimulationStats,
        process_id: int,
        protocol: "Protocol",
        bus: "Optional[Bus]" = None,
    ):
        self.sim = sim
        self.network = network
        self.trace = trace
        self.stats = stats
        self._bus = bus
        self.process_id = process_id
        self.n_processes = network.n_processes
        self.protocol = protocol
        self.ctx = HostContext(self)
        self._invoked: Set[str] = set()
        self._sent: Set[str] = set()
        self._received: Set[str] = set()
        self._receive_time: Dict[str, float] = {}
        self._delivered: Set[str] = set()
        # Reactive applications (repro.apps) observe deliveries.
        self.delivery_listener: Optional[Any] = None
        # The WAL's redo-log hook (repro.wal.sink.WalSink.attach_host):
        # called with (process_id, "invoke", message) / (process_id,
        # "packet", packet) before the input is processed, so the log
        # holds every input in processing order even when handling raises.
        self.input_listener: Optional[Any] = None
        # Crash state (driven by repro.faults.FaultInjector): while down,
        # the faulty transport blackholes arrivals and timers are inert.
        # The epoch invalidates every timer armed before a crash.
        self.down = False
        self.crash_epoch = 0
        network.attach(process_id, self._on_packet)

    def start(self) -> None:
        """Fire the protocol's ``on_start`` hook."""
        self.protocol.on_start(self.ctx)

    # Application-facing -------------------------------------------------------

    def invoke(self, message: Message) -> None:
        """The user requests a send (event ``x.s*``)."""
        if message.sender != self.process_id:
            raise ProtocolError(
                "message %r invoked at process %d but its sender is %d"
                % (message.id, self.process_id, message.sender)
            )
        if message.id in self._invoked:
            raise ProtocolError("message %r invoked twice" % message.id)
        if self.input_listener is not None:
            self.input_listener(self.process_id, "invoke", message)
        self.trace.register_message(message)
        self._invoked.add(message.id)
        self.trace.record(self.sim.now, self.process_id, Event.invoke(message.id))
        bus = self._bus
        if bus is not None and bus.active:
            bus.emit(
                "host.invoke",
                self.sim.now,
                message_id=message.id,
                process=self.process_id,
                receiver=message.receiver,
            )
        self.protocol.on_invoke(self.ctx, message)
        if message.id not in self._sent and bus is not None and bus.active:
            # The protocol returned without releasing: the send is inhibited.
            bus.emit(
                "host.inhibit",
                self.sim.now,
                message_id=message.id,
                process=self.process_id,
            )

    # Protocol-facing -----------------------------------------------------------

    def release(self, message: Message, tag: Any) -> None:
        """Execute ``x.s``: validate, record, and transmit."""
        if message.id not in self._invoked:
            raise ProtocolError(
                "protocol released %r before it was invoked" % message.id
            )
        if message.id in self._sent:
            raise ProtocolError("message %r released twice" % message.id)
        self._sent.add(message.id)
        self.trace.record(self.sim.now, self.process_id, Event.send(message.id))
        tag_bytes = estimate_size(tag)
        self.stats.user_messages += 1
        self.stats.tag_bytes_total += tag_bytes
        self.stats.max_tag_bytes = max(self.stats.max_tag_bytes, tag_bytes)
        bus = self._bus
        if bus is not None and bus.active:
            bus.emit(
                "host.release",
                self.sim.now,
                message_id=message.id,
                process=self.process_id,
                receiver=message.receiver,
                tag_bytes=tag_bytes,
            )
        self.network.send_user(self.process_id, message.receiver, message, tag)

    def deliver(self, message: Message) -> None:
        """Execute ``x.r``: validate, record, account latency."""
        if message.id not in self._received:
            raise ProtocolError(
                "protocol delivered %r before it was received" % message.id
            )
        if message.id in self._delivered:
            raise ProtocolError("message %r delivered twice" % message.id)
        self._delivered.add(message.id)
        self.trace.record(self.sim.now, self.process_id, Event.deliver(message.id))
        self.stats.deliveries += 1
        delayed = self.sim.now > self._receive_time[message.id]
        if delayed:
            self.stats.delayed_deliveries += 1
        send_time = self.trace.time_of(Event.send(message.id))
        self.stats.delivery_latencies.append(self.sim.now - send_time)
        invoke_time = self.trace.time_of(Event.invoke(message.id))
        self.stats.end_to_end_latencies.append(self.sim.now - invoke_time)
        bus = self._bus
        if bus is not None and bus.active:
            bus.emit(
                "host.deliver",
                self.sim.now,
                message_id=message.id,
                process=self.process_id,
                sender=message.sender,
                delayed=delayed,
            )
        if self.delivery_listener is not None:
            self.delivery_listener(message)

    def send_control(self, dst: int, payload: Any) -> None:
        """Emit a control message and account its cost."""
        self.stats.control_messages += 1
        self.stats.control_bytes += estimate_size(payload)
        self.network.send_control(self.process_id, dst, payload)

    def retransmit_user(self, message: Message, tag: Any) -> None:
        """Re-send an already-released user message (ARQ recovery)."""
        if message.id not in self._sent:
            raise ProtocolError(
                "protocol retransmitted %r before it was released" % message.id
            )
        self.stats.retransmissions += 1
        self.emit_probe(
            "retx.send",
            message_id=message.id,
            receiver=message.receiver,
            kind="user",
        )
        self.network.send_user(self.process_id, message.receiver, message, tag)

    def retransmit_control(self, dst: int, payload: Any) -> None:
        """Re-send a control message, accounted as retransmission too."""
        self.stats.retransmissions += 1
        self.emit_probe(
            "retx.send", message_id=None, receiver=dst, kind="control"
        )
        self.send_control(dst, payload)

    def schedule_timer(self, delay: float, action) -> None:
        """Schedule a protocol timer with volatile-loss crash semantics:
        the action is dropped if this process crashed after arming it."""
        epoch = self.crash_epoch

        def guarded() -> None:
            if self.down or self.crash_epoch != epoch:
                return  # the timer did not survive the crash
            self.emit_probe("timer.fire")
            action()

        self.sim.schedule(delay, guarded)

    def emit_probe(self, probe: str, **data: Any) -> None:
        """Emit a protocol-level probe with time and process filled in."""
        bus = self._bus
        if bus is not None and bus.active:
            bus.emit(probe, self.sim.now, process=self.process_id, **data)

    # Network-facing --------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if self.input_listener is not None:
            self.input_listener(self.process_id, "packet", packet)
        if packet.is_user:
            message = packet.message
            assert message is not None
            if message.id in self._received:
                # A second copy (network duplication or a retransmission
                # racing the original).  The receive event already happened;
                # protocols that deduplicate get the copy via on_duplicate,
                # anything else sees it as the bug it would be.
                if getattr(self.protocol, "accepts_duplicates", False):
                    self.stats.duplicate_receives += 1
                    self.emit_probe(
                        "retx.dup", message_id=message.id, sender=message.sender
                    )
                    self.protocol.on_duplicate(self.ctx, message, packet.tag)
                    return
                raise ProtocolError("message %r received twice" % message.id)
            self.trace.register_message(message)
            self._received.add(message.id)
            self._receive_time[message.id] = self.sim.now
            self.trace.record(
                self.sim.now, self.process_id, Event.receive(message.id)
            )
            bus = self._bus
            if bus is not None and bus.active:
                bus.emit(
                    "host.receive",
                    self.sim.now,
                    message_id=message.id,
                    process=self.process_id,
                    sender=message.sender,
                )
            self.protocol.on_user_message(self.ctx, message, packet.tag)
        else:
            self.protocol.on_control(self.ctx, packet.src, packet.payload)
