"""End-to-end simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.runs.system_run import SystemRun
from repro.runs.user_run import UserRun
from repro.simulation.host import ProtocolHost
from repro.simulation.network import LatencyModel, Network, UniformLatency
from repro.simulation.sim import Simulator
from repro.simulation.trace import SimulationStats, Trace
from repro.simulation.workloads import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs depends on us)
    from repro.obs.bus import Bus

# A factory builds one protocol instance per process: (process_id, n) -> Protocol
ProtocolFactory = Callable[[int, int], "Protocol"]


@dataclass
class SimulationResult:
    """Everything a simulation produced."""

    workload: Workload
    protocol_name: str
    trace: Trace
    stats: SimulationStats
    system_run: SystemRun
    user_run: UserRun
    delivered_all: bool
    undelivered: List[str]
    # The per-process protocol instances, in process order (observability
    # consumers ask them why a message is stuck).
    protocols: List[object] = field(default_factory=list)
    # The earliest specification violation, when ``run_simulation`` was
    # given a ``spec`` to monitor (``repro.verification.engine``); ``None``
    # with no spec or a clean run.
    first_violation: Optional[Any] = None
    # The fault plan the run executed under (``repro.faults``), ``None``
    # for a reliable network; ``fault_summary`` aggregates what the
    # injector and faulty transport actually did.
    fault_plan: Optional[Any] = None
    fault_summary: Optional[Any] = None
    # Ids of user messages that lost at least one copy to a fault (drop,
    # partition, or crash blackhole), in first-loss order.  Feed these to
    # :meth:`repro.obs.watchdog.Watchdog.note_drop` to attribute stuck
    # messages to network loss without a live bus.
    dropped_messages: List[str] = field(default_factory=list)
    # Real seconds the simulation took, so simulated throughput is
    # directly comparable with the net runtime's (``repro load``).
    wall_seconds: float = 0.0

    @property
    def user_messages_per_second(self) -> float:
        """Simulated user messages processed per *wall-clock* second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.stats.user_messages / self.wall_seconds

    def summary(self) -> str:
        """A short human-readable result block."""
        lines = [
            "workload:          %s" % self.workload.name,
            "protocol:          %s" % self.protocol_name,
            "user messages:     %d" % self.stats.user_messages,
            "control messages:  %d" % self.stats.control_messages,
            "control bytes:     %d" % self.stats.control_bytes,
            "mean tag bytes:    %.1f" % self.stats.mean_tag_bytes,
            "max tag bytes:     %d" % self.stats.max_tag_bytes,
            "delayed delivers:  %d" % self.stats.delayed_deliveries,
            "mean latency:      %.3f" % self.stats.mean_delivery_latency,
            "p95 latency:       %.3f" % self.stats.delivery_latency_percentile(95),
            "max latency:       %.3f" % self.stats.max_delivery_latency,
            "mean invoke->r:    %.3f" % self.stats.mean_end_to_end_latency,
            "all delivered:     %s" % self.delivered_all,
            "wall seconds:      %.3f" % self.wall_seconds,
            "user msgs/sec:     %.0f" % self.user_messages_per_second,
        ]
        if self.fault_plan is not None:
            faults = self.fault_summary
            lines += [
                "packets dropped:   %d" % self.stats.packets_dropped,
                "packets duped:     %d" % self.stats.packets_duplicated,
                "partition drops:   %d" % self.stats.partition_drops,
                "crash drops:       %d" % self.stats.crash_drops,
                "crash/restart:     %d/%d"
                % (self.stats.crashes, self.stats.restarts),
                "retransmissions:   %d" % self.stats.retransmissions,
                "duplicate recvs:   %d" % self.stats.duplicate_receives,
                "goodput:           %.3f" % self.stats.goodput,
            ]
            if faults is not None and faults.spikes:
                lines.append("delay spikes:      %d" % faults.spikes)
        return "\n".join(lines)


def run_simulation(
    protocol_factory: ProtocolFactory,
    workload: Workload,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    fifo_channels: bool = False,
    max_events: int = 1_000_000,
    bus: "Optional[Bus]" = None,
    spec: Optional[Any] = None,
    faults: Optional[Any] = None,
    wal: Optional[Any] = None,
) -> SimulationResult:
    """Run ``workload`` under the protocol and record the execution.

    The network seed controls latencies; the workload's own seed already
    fixed the request script, so (factory, workload, seed) determines the
    run completely.  An optional instrumentation ``bus``
    (:class:`repro.obs.Bus`) receives probe events from the simulator,
    network and hosts; subscribers only observe, so the schedule -- and
    every statistic -- is identical with or without one.

    With a ``spec`` (a :class:`~repro.predicates.spec.Specification` or
    single predicate), the recorded trace is checked by an incremental
    :class:`~repro.verification.engine.SpecMonitor` -- each event is
    inspected once, in execution order -- and the earliest completing
    event lands in :attr:`SimulationResult.first_violation`
    (``verify.step``/``verify.match`` probes go to ``bus``).

    With ``faults`` (a :class:`repro.faults.FaultPlan`), the latency
    transport is wrapped in a :class:`repro.faults.FaultyTransport` and a
    :class:`repro.faults.FaultInjector` drives the plan's crash/restart
    events; user invokes hitting a crashed process are deferred to its
    restart.  The fault RNG is private to the plan's ``seed``, so the
    same ``seed`` argument still produces the same latency stream.

    With a ``wal`` (a :class:`repro.wal.WalSink`), the run is recorded
    durably: every trace record, every host input (in processing order)
    and the fault/retx/timer probe streams are appended to the sink's
    segment directory, and crash-restart events recover protocol state
    by *replaying the log* instead of restoring a crash-instant snapshot
    -- the honest durability semantics (see :mod:`repro.wal`).
    """
    import time as _time

    wall_start = _time.perf_counter()
    sim = Simulator(bus=bus)
    latency_model = latency or UniformLatency(low=1.0, high=10.0)
    latency_model.reset()
    from repro.simulation.network import LatencyTransport

    transport: Any = LatencyTransport(
        latency=latency_model, seed=seed, fifo_channels=fifo_channels
    )
    injector = None
    if faults is not None:
        from repro.faults import FaultInjector, FaultyTransport

        transport = FaultyTransport(faults, transport)
    network = Network(
        sim,
        workload.n_processes,
        bus=bus,
        transport=transport,
    )
    trace = Trace(workload.n_processes)
    stats = SimulationStats()
    hosts = [
        ProtocolHost(
            sim,
            network,
            trace,
            stats,
            process_id,
            protocol_factory(process_id, workload.n_processes),
            bus=bus,
        )
        for process_id in range(workload.n_processes)
    ]
    if wal is not None:
        wal.set_clock(lambda: sim.now)
        wal.attach_trace(trace)
        for host in hosts:
            wal.attach_host(host)
        if bus is not None:
            wal.attach_bus(bus)
    if faults is not None:
        injector = FaultInjector(
            sim,
            transport,
            {host.process_id: host for host in hosts},
            bus=bus,
            wal=wal,
            protocol_factory=protocol_factory,
        )
        injector.install(faults)
    for host in hosts:
        host.start()

    messages = workload.messages()
    for request, message in zip(workload.requests, messages):
        host = hosts[message.sender]

        def invoke(h=host, m=message):
            if h.down:
                # The process is crashed: the application retries the
                # request once it comes back up (or never, if it stays
                # down -- the message then counts as undelivered).
                assert injector is not None
                injector.defer_invoke(h.process_id, lambda: h.invoke(m))
                return
            h.invoke(m)

        sim.schedule(request.time, invoke)

    executed = sim.run(max_events=max_events)
    if wal is not None:
        wal.sync()
    if executed >= max_events:
        raise RuntimeError(
            "simulation exceeded %d events; suspected protocol livelock"
            % max_events
        )

    violation = None
    if spec is not None:
        from repro.verification.engine import SpecMonitor

        violation = SpecMonitor(spec, bus=bus).advance(trace)

    fault_summary = None
    dropped_messages: List[str] = []
    if injector is not None:
        fault_summary = injector.summary()
        stats.packets_dropped = transport.packets_dropped
        stats.packets_duplicated = transport.packets_duplicated
        stats.partition_drops = transport.partition_drops
        stats.crash_drops = transport.crash_drops
        seen = set()
        for message_id in transport.dropped_user:
            if message_id not in seen:
                seen.add(message_id)
                dropped_messages.append(message_id)

    system_run = trace.to_system_run()
    undelivered = trace.undelivered_messages()
    return SimulationResult(
        workload=workload,
        protocol_name=getattr(
            hosts[0].protocol, "name", type(hosts[0].protocol).__name__
        ),
        trace=trace,
        stats=stats,
        system_run=system_run,
        user_run=system_run.users_view(),
        delivered_all=not undelivered,
        undelivered=undelivered,
        protocols=[host.protocol for host in hosts],
        first_violation=violation,
        fault_plan=faults,
        fault_summary=fault_summary,
        dropped_messages=dropped_messages,
        wall_seconds=_time.perf_counter() - wall_start,
    )
