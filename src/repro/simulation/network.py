"""The simulated asynchronous network.

Latency models draw per-packet delays from a seeded generator; with
``fifo_channels=False`` (the default, and the paper's adversary) packets
on the same channel may overtake each other.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.events import Message
from repro.simulation.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs depends on us)
    from repro.obs.bus import Bus


class LatencyModel:
    """Base class: per-packet latency as a function of channel and RNG."""

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Draw this packet's transit time."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return any internal cursor to its initial state.

        Stateless models (the default) have nothing to do; stateful ones
        (:class:`ScriptedLatency`) rewind so an instance can be reused
        across simulations.  :func:`~repro.simulation.runner.run_simulation`
        calls this before every run.
        """


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant delay (useful for hand-built schedules)."""

    delay: float = 1.0

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Always the configured constant."""
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high)`` -- heavy reordering when wide."""

    low: float = 1.0
    high: float = 10.0

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Uniform draw from ``[low, high)``."""
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class AlternatingLatency(LatencyModel):
    """Alternates slow/fast per packet: maximal adjacent reordering.

    Consecutive packets on any channel arrive in inverted pairs (the slow
    one overtaken by the fast one), the worst case for FIFO- and
    causality-sensitive protocols.
    """

    fast: float = 1.0
    slow: float = 50.0

    def __post_init__(self) -> None:
        if not 0 <= self.fast <= self.slow:
            raise ValueError("need 0 <= fast <= slow")

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        # Deterministic alternation driven by the shared RNG stream.
        """Either ``fast`` or ``slow``, a fair coin per packet."""
        flip = rng.random() < 0.5
        return self.slow if flip else self.fast


@dataclass(frozen=True)
class TargetedSlowChannel(LatencyModel):
    """One designated channel is much slower than the rest -- the
    "stale replica" adversary that provokes causal violations through
    third parties."""

    slow_src: int = 0
    slow_dst: int = 1
    slow: float = 80.0
    low: float = 1.0
    high: float = 5.0

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Base draw, plus the penalty on the slow channel."""
        base = rng.uniform(self.low, self.high)
        if (src, dst) == (self.slow_src, self.slow_dst):
            return base + self.slow
        return base


class ScriptedLatency(LatencyModel):
    """Explicit per-packet delays, in transmission order.

    For building *exact* executions (the paper's figure scenarios, or a
    regression case from a field trace): the n-th transmitted packet gets
    the n-th delay.  Falls back to ``default`` when the script runs out.
    """

    def __init__(self, delays, default: float = 1.0):
        self._delays = list(delays)
        self._cursor = 0
        self.default = default
        if any(d < 0 for d in self._delays):
            raise ValueError("delays must be non-negative")
        if default < 0:
            raise ValueError("default delay must be non-negative")

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """The next scripted delay, or ``default`` when exhausted."""
        if self._cursor < len(self._delays):
            delay = self._delays[self._cursor]
            self._cursor += 1
            return delay
        return self.default

    def reset(self) -> None:
        """Rewind to the first scripted delay (for instance reuse)."""
        self._cursor = 0


@dataclass
class Packet:
    """One network-level transmission (a user message or a control message)."""

    src: int
    dst: int
    kind: str  # "user" | "control"
    message: Optional[Message] = None
    tag: Any = None
    payload: Any = None
    send_time: float = 0.0
    uid: int = 0
    # Position among all packets transmitted on this (src, dst) channel --
    # a schedule-stable identity (unlike ``uid``, it does not shift when
    # unrelated channels commute), used by the model checker.
    channel_seq: int = 0

    @property
    def is_user(self) -> bool:
        return self.kind == "user"


class Transport:
    """How a transmitted packet reaches its destination handler.

    The network validates and accounts each packet, then hands it to its
    transport.  :class:`LatencyTransport` (the default) draws a seeded
    delay and schedules the arrival on the simulator -- the asynchronous
    adversary.  The model checker substitutes a transport that *parks*
    packets until an explorer explicitly dispatches them
    (:class:`repro.mc.world.ControlledTransport`), which is how the same
    hosts and protocols run under either random latency or an explicit
    schedule.
    """

    def transmit(self, network: "Network", packet: Packet) -> Optional[float]:
        """Route ``packet``; return its arrival time (``None`` if the
        arrival is decided later by an external scheduler)."""
        raise NotImplementedError


class LatencyTransport(Transport):
    """Seeded-latency delivery on the simulator's event queue."""

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        fifo_channels: bool = False,
    ):
        self.latency = latency or UniformLatency()
        self.fifo_channels = fifo_channels
        self._rng = random.Random(seed)
        self._last_arrival: Dict[Tuple[int, int], float] = {}

    def transmit(self, network: "Network", packet: Packet) -> Optional[float]:
        """Draw the packet's delay and schedule the handler call."""
        sim = network.sim
        delay = self.latency.sample(self._rng, packet.src, packet.dst)
        arrival = sim.now + delay
        if self.fifo_channels:
            channel = (packet.src, packet.dst)
            arrival = max(arrival, self._last_arrival.get(channel, 0.0) + 1e-9)
            self._last_arrival[channel] = arrival
        handler = network.handler_for(packet.dst)
        sim.schedule(arrival - sim.now, lambda: handler(packet))
        return arrival


class Network:
    """Routes packets between attached handlers via a transport.

    By default the transport draws seeded latencies (the paper's
    asynchronous adversary); pass ``transport`` to control delivery
    explicitly (used by :mod:`repro.mc`).
    """

    def __init__(
        self,
        sim: Simulator,
        n_processes: int,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        fifo_channels: bool = False,
        bus: "Optional[Bus]" = None,
        transport: Optional[Transport] = None,
    ):
        self.sim = sim
        self.n_processes = n_processes
        self.transport = transport or LatencyTransport(
            latency=latency, seed=seed, fifo_channels=fifo_channels
        )
        self._bus = bus
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        self._uid = itertools.count()
        self._channel_seq: Dict[Tuple[int, int], "itertools.count"] = {}
        self.packets_sent = 0
        self.user_packets = 0
        self.control_packets = 0

    @property
    def latency(self) -> Optional[LatencyModel]:
        """The latency model, when the transport is latency-based."""
        return getattr(self.transport, "latency", None)

    @property
    def fifo_channels(self) -> bool:
        """Whether the transport keeps per-channel FIFO arrival order."""
        return bool(getattr(self.transport, "fifo_channels", False))

    @property
    def bus(self) -> "Optional[Bus]":
        """The instrumentation bus, for transports that emit fault probes."""
        return self._bus

    def attach(self, process_id: int, handler: Callable[[Packet], None]) -> None:
        """Register the packet handler of ``process_id``."""
        if process_id in self._handlers:
            raise ValueError("process %d already attached" % process_id)
        self._handlers[process_id] = handler

    def handler_for(self, process_id: int) -> Callable[[Packet], None]:
        """The packet handler attached for ``process_id``."""
        handler = self._handlers.get(process_id)
        if handler is None:
            raise ValueError(
                "no handler attached for process %r (attached: %s)"
                % (process_id, sorted(self._handlers) or "none")
            )
        return handler

    def transmit(self, packet: Packet) -> None:
        """Send a packet; its arrival is decided by the transport."""
        if packet.dst not in range(self.n_processes):
            raise ValueError("unknown destination %r" % (packet.dst,))
        packet.send_time = self.sim.now
        packet.uid = next(self._uid)
        channel = (packet.src, packet.dst)
        counter = self._channel_seq.get(channel)
        if counter is None:
            counter = self._channel_seq[channel] = itertools.count()
        packet.channel_seq = next(counter)
        self.packets_sent += 1
        if packet.is_user:
            self.user_packets += 1
        else:
            self.control_packets += 1
        arrival = self.transport.transmit(self, packet)
        bus = self._bus
        if bus is not None and bus.active:
            delay = None if arrival is None else arrival - self.sim.now
            if packet.is_user:
                message = packet.message
                bus.emit(
                    "net.send",
                    self.sim.now,
                    src=packet.src,
                    dst=packet.dst,
                    message_id=message.id if message is not None else None,
                    tag=packet.tag,
                    delay=delay,
                    arrival=arrival,
                )
            else:
                bus.emit(
                    "net.control",
                    self.sim.now,
                    src=packet.src,
                    dst=packet.dst,
                    payload=packet.payload,
                    delay=delay,
                    arrival=arrival,
                )

    def send_user(
        self, src: int, dst: int, message: Message, tag: Any = None
    ) -> None:
        """Transmit a user message with its protocol tag."""
        self.transmit(Packet(src=src, dst=dst, kind="user", message=message, tag=tag))

    def send_control(self, src: int, dst: int, payload: Any) -> None:
        """Transmit a protocol control message."""
        self.transmit(Packet(src=src, dst=dst, kind="control", payload=payload))
