"""A minimal deterministic discrete-event scheduler."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs depends on us)
    from repro.obs.bus import Bus

Action = Callable[[], None]


class Simulator:
    """Priority-queue event loop over virtual time.

    Ties in time are broken by scheduling order (a monotonically increasing
    sequence number), so a run is a pure function of the scheduled actions.
    An optional instrumentation ``bus`` receives a ``sim.step`` probe per
    dispatched event; subscribers only observe, so attaching one never
    changes the schedule.
    """

    def __init__(self, bus: "Optional[Bus]" = None) -> None:
        self._queue: List[Tuple[float, int, Action]] = []
        self._now = 0.0
        self._sequence = 0
        self._executed = 0
        self._bus = bus

    @property
    def now(self) -> float:
        return self._now

    @property
    def executed_events(self) -> int:
        return self._executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, action: Action) -> None:
        """Run ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._queue, (self._now + delay, self._sequence, action))
        self._sequence += 1

    def run(self, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains (or ``max_events``).

        Returns the number of events executed by this call.
        """
        executed_before = self._executed
        bus = self._bus
        while self._queue:
            if max_events is not None and self._executed - executed_before >= max_events:
                break
            time, sequence, action = heapq.heappop(self._queue)
            self._now = time
            self._executed += 1
            if bus is not None and bus.active:
                bus.emit(
                    "sim.step", time, sequence=sequence, pending=len(self._queue)
                )
            action()
        return self._executed - executed_before

    def __repr__(self) -> str:
        return "Simulator(now=%.3f, pending=%d, executed=%d)" % (
            self._now,
            len(self._queue),
            self._executed,
        )
