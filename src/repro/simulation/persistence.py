"""Trace, run, workload and schedule serialization (JSON).

Recorded executions round-trip through plain dicts, so traces can be
archived, diffed across protocol versions, and re-verified without
re-simulating.  Model-checker counterexamples
(:class:`repro.mc.counterexample.Schedule`) serialize the same way --
workload, protocol name and transition keys -- so a violating schedule
found anywhere replays bit-identically anywhere else.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.events import Event, Message
from repro.events.events import kind_from_symbol
from repro.runs.user_run import UserRun
from repro.simulation.trace import Trace
from repro.simulation.workloads import SendRequest, Workload


def message_to_dict(message: Message) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "id": message.id,
        "sender": message.sender,
        "receiver": message.receiver,
    }
    if message.color is not None:
        payload["color"] = message.color
    if message.group is not None:
        payload["group"] = message.group
    return payload


def message_from_dict(payload: Dict[str, Any]) -> Message:
    return Message(
        id=payload["id"],
        sender=payload["sender"],
        receiver=payload["receiver"],
        color=payload.get("color"),
        group=payload.get("group"),
    )


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "format": "repro-trace-v1",
        "n_processes": trace.n_processes,
        "messages": [message_to_dict(m) for m in trace.messages()],
        "records": [
            {
                "time": record.time,
                "process": record.process,
                "event": [record.event.message_id, record.event.kind.symbol],
            }
            for record in trace.records()
        ],
    }


def trace_from_dict(payload: Dict[str, Any]) -> Trace:
    if payload.get("format") != "repro-trace-v1":
        raise ValueError("not a repro trace: format=%r" % payload.get("format"))
    trace = Trace(payload["n_processes"])
    for message_payload in payload["messages"]:
        trace.register_message(message_from_dict(message_payload))
    for record in payload["records"]:
        message_id, symbol = record["event"]
        trace.record(
            record["time"],
            record["process"],
            Event(message_id, kind_from_symbol(symbol)),
        )
    return trace


def save_trace(trace: Trace, destination: Union[str, IO[str]]) -> None:
    payload = trace_to_dict(trace)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=1)
    else:
        json.dump(payload, destination, indent=1)


def load_trace(source: Union[str, IO[str]]) -> Trace:
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return trace_from_dict(payload)


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Serialize a workload (name, process count, request script)."""
    requests = []
    for request in workload.requests:
        entry: Dict[str, Any] = {
            "time": request.time,
            "sender": request.sender,
            "receiver": request.receiver,
        }
        if request.color is not None:
            entry["color"] = request.color
        if request.group is not None:
            entry["group"] = request.group
        if request.payload is not None:
            entry["payload"] = request.payload
        requests.append(entry)
    return {
        "format": "repro-workload-v1",
        "name": workload.name,
        "n_processes": workload.n_processes,
        "requests": requests,
    }


def workload_from_dict(payload: Dict[str, Any]) -> Workload:
    if payload.get("format") != "repro-workload-v1":
        raise ValueError(
            "not a repro workload: format=%r" % payload.get("format")
        )
    return Workload(
        name=payload["name"],
        n_processes=payload["n_processes"],
        requests=tuple(
            SendRequest(
                time=entry["time"],
                sender=entry["sender"],
                receiver=entry["receiver"],
                color=entry.get("color"),
                group=entry.get("group"),
                payload=entry.get("payload"),
            )
            for entry in payload["requests"]
        ),
    )


def schedule_to_dict(schedule) -> Dict[str, Any]:
    """Serialize a model-checker schedule (a replayable counterexample)."""
    return {
        "format": "repro-mc-schedule-v1",
        "protocol": schedule.protocol,
        "invoke_order": schedule.invoke_order,
        "fault_budget": schedule.fault_budget,
        "workload": workload_to_dict(schedule.workload),
        "keys": [list(key) for key in schedule.keys],
    }


def schedule_from_dict(payload: Dict[str, Any]):
    if payload.get("format") != "repro-mc-schedule-v1":
        raise ValueError(
            "not a repro mc schedule: format=%r" % payload.get("format")
        )
    # Imported here: repro.mc builds on the simulation layer, not the
    # other way round.
    from repro.mc.counterexample import Schedule

    return Schedule(
        protocol=payload["protocol"],
        workload=workload_from_dict(payload["workload"]),
        keys=tuple(tuple(key) for key in payload["keys"]),
        invoke_order=payload.get("invoke_order", "script"),
        # Absent in files written before fault injection existed.
        fault_budget=payload.get("fault_budget", 0),
    )


def save_schedule(schedule, destination: Union[str, IO[str]]) -> None:
    """Write a schedule as JSON (path or open text handle)."""
    payload = schedule_to_dict(schedule)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=1)
    else:
        json.dump(payload, destination, indent=1)


def load_schedule(source: Union[str, IO[str]]):
    """Read a schedule written by :func:`save_schedule`."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return schedule_from_dict(payload)


def user_run_to_dict(run: UserRun) -> Dict[str, Any]:
    """Serialize a user-view run (messages, events, generating order)."""
    return {
        "format": "repro-user-run-v1",
        "messages": [message_to_dict(m) for m in run.messages()],
        "events": [[e.message_id, e.kind.symbol] for e in run.events()],
        "relations": [
            [[a.message_id, a.kind.symbol], [b.message_id, b.kind.symbol]]
            for a, b in run.partial_order().generating_pairs()
        ],
    }


def user_run_from_dict(payload: Dict[str, Any]) -> UserRun:
    if payload.get("format") != "repro-user-run-v1":
        raise ValueError("not a repro user run: format=%r" % payload.get("format"))
    run = UserRun()
    for message_payload in payload["messages"]:
        run.add_message(message_from_dict(message_payload), with_events=False)
    for message_id, symbol in payload["events"]:
        run.add_event(Event(message_id, kind_from_symbol(symbol)))
    for (a_id, a_symbol), (b_id, b_symbol) in payload["relations"]:
        before = Event(a_id, kind_from_symbol(a_symbol))
        after = Event(b_id, kind_from_symbol(b_symbol))
        if before != after and not run.before(before, after):
            run.order(before, after)
    run.validate()
    return run
