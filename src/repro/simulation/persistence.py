"""Trace and run serialization (JSON).

Recorded executions round-trip through plain dicts, so traces can be
archived, diffed across protocol versions, and re-verified without
re-simulating.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.events import Event, Message
from repro.events.events import kind_from_symbol
from repro.runs.user_run import UserRun
from repro.simulation.trace import Trace


def message_to_dict(message: Message) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "id": message.id,
        "sender": message.sender,
        "receiver": message.receiver,
    }
    if message.color is not None:
        payload["color"] = message.color
    if message.group is not None:
        payload["group"] = message.group
    return payload


def message_from_dict(payload: Dict[str, Any]) -> Message:
    return Message(
        id=payload["id"],
        sender=payload["sender"],
        receiver=payload["receiver"],
        color=payload.get("color"),
        group=payload.get("group"),
    )


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "format": "repro-trace-v1",
        "n_processes": trace.n_processes,
        "messages": [message_to_dict(m) for m in trace.messages()],
        "records": [
            {
                "time": record.time,
                "process": record.process,
                "event": [record.event.message_id, record.event.kind.symbol],
            }
            for record in trace.records()
        ],
    }


def trace_from_dict(payload: Dict[str, Any]) -> Trace:
    if payload.get("format") != "repro-trace-v1":
        raise ValueError("not a repro trace: format=%r" % payload.get("format"))
    trace = Trace(payload["n_processes"])
    for message_payload in payload["messages"]:
        trace.register_message(message_from_dict(message_payload))
    for record in payload["records"]:
        message_id, symbol = record["event"]
        trace.record(
            record["time"],
            record["process"],
            Event(message_id, kind_from_symbol(symbol)),
        )
    return trace


def save_trace(trace: Trace, destination: Union[str, IO[str]]) -> None:
    payload = trace_to_dict(trace)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=1)
    else:
        json.dump(payload, destination, indent=1)


def load_trace(source: Union[str, IO[str]]) -> Trace:
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return trace_from_dict(payload)


def user_run_to_dict(run: UserRun) -> Dict[str, Any]:
    """Serialize a user-view run (messages, events, generating order)."""
    return {
        "format": "repro-user-run-v1",
        "messages": [message_to_dict(m) for m in run.messages()],
        "events": [[e.message_id, e.kind.symbol] for e in run.events()],
        "relations": [
            [[a.message_id, a.kind.symbol], [b.message_id, b.kind.symbol]]
            for a, b in run.partial_order().generating_pairs()
        ],
    }


def user_run_from_dict(payload: Dict[str, Any]) -> UserRun:
    if payload.get("format") != "repro-user-run-v1":
        raise ValueError("not a repro user run: format=%r" % payload.get("format"))
    run = UserRun()
    for message_payload in payload["messages"]:
        run.add_message(message_from_dict(message_payload), with_events=False)
    for message_id, symbol in payload["events"]:
        run.add_event(Event(message_id, kind_from_symbol(symbol)))
    for (a_id, a_symbol), (b_id, b_symbol) in payload["relations"]:
        before = Event(a_id, kind_from_symbol(a_symbol))
        after = Event(b_id, kind_from_symbol(b_symbol))
        if before != after and not run.before(before, after):
            run.order(before, after)
    run.validate()
    return run
