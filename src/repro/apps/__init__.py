"""Reactive applications on top of ordering protocols.

The paper motivates message-ordering guarantees by the algorithms that
need them ("many distributed algorithms work correctly only in the
presence of FIFO channels", §1; snapshot and recovery protocols, §2).
This package provides the application layer -- processes that *react* to
deliveries by sending more messages -- and the classic consumer:
Chandy-Lamport global snapshots, which are consistent exactly when the
underlying channels are FIFO.
"""

from repro.apps.base import AppContext, Application, run_application
from repro.apps.snapshot import (
    SnapshotReport,
    TokenTransferApp,
    run_snapshot_experiment,
)
from repro.apps.chat import ChatApp, ChatReport, run_chat_experiment

__all__ = [
    "Application",
    "AppContext",
    "run_application",
    "TokenTransferApp",
    "SnapshotReport",
    "run_snapshot_experiment",
    "ChatApp",
    "ChatReport",
    "run_chat_experiment",
]
