"""Chandy-Lamport global snapshots over token transfers.

The classic conservation experiment: processes start with equal token
balances and transfer random amounts; a snapshot must capture a global
state whose total balance (process states + in-channel transfers) equals
the true total.  The algorithm records:

- the local balance when the first marker arrives (or when initiating),
- per incoming channel, the transfers arriving between the snapshot start
  and that channel's marker.

Chandy and Lamport's correctness argument *requires FIFO channels* -- the
paper's §1 motivation in executable form.  Run it over the FIFO protocol
and totals always balance; run it over the do-nothing protocol on a
reordering network and markers overtake in-flight transfers, so totals
drift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.apps.base import AppContext, Application, run_application
from repro.events import Message
from repro.simulation.network import LatencyModel

MARKER = "marker"


class TokenTransferApp(Application):
    """Random token transfers plus the Chandy-Lamport snapshot role."""

    def __init__(
        self,
        initial_balance: int = 100,
        transfers: int = 12,
        mean_gap: float = 2.0,
        seed: int = 0,
        snapshot_at: Optional[float] = None,
        initiator: int = 0,
    ):
        self.balance = initial_balance
        self.transfers_left = transfers
        self.mean_gap = mean_gap
        self.snapshot_at = snapshot_at
        self.initiator = initiator
        self._rng = random.Random(seed)
        # Snapshot state.
        self.snapshot_started = False
        self.recorded_balance: Optional[int] = None
        self.channel_recordings: Dict[int, List[int]] = {}
        self.channels_closed: Set[int] = set()

    # -- token traffic -----------------------------------------------------

    def on_start(self, ctx: AppContext) -> None:
        self._schedule_next_transfer(ctx)
        if self.snapshot_at is not None and ctx.process_id == self.initiator:
            ctx.schedule(self.snapshot_at, lambda: self._start_snapshot(ctx))

    def _schedule_next_transfer(self, ctx: AppContext) -> None:
        if self.transfers_left <= 0:
            return
        self.transfers_left -= 1
        delay = self._rng.expovariate(1.0 / self.mean_gap)
        ctx.schedule(delay, lambda: self._transfer(ctx))

    def _transfer(self, ctx: AppContext) -> None:
        if self.balance > 0:
            amount = self._rng.randint(1, max(1, self.balance // 4))
            receiver = self._rng.randrange(ctx.n_processes - 1)
            if receiver >= ctx.process_id:
                receiver += 1
            self.balance -= amount
            ctx.send(receiver, payload=("transfer", amount))
        self._schedule_next_transfer(ctx)

    # -- Chandy-Lamport ----------------------------------------------------

    def _start_snapshot(self, ctx: AppContext) -> None:
        if self.snapshot_started:
            return
        self.snapshot_started = True
        self.recorded_balance = self.balance
        for process in range(ctx.n_processes):
            if process != ctx.process_id:
                self.channel_recordings[process] = []
                ctx.send(process, color=MARKER, payload=(MARKER,))

    def on_deliver(self, ctx: AppContext, message: Message) -> None:
        if message.color == MARKER:
            if not self.snapshot_started:
                self._start_snapshot(ctx)
                # The channel the first marker arrived on is empty.
            self.channels_closed.add(message.sender)
            return
        kind, amount = message.payload
        assert kind == "transfer"
        self.balance += amount
        if self.snapshot_started and message.sender not in self.channels_closed:
            self.channel_recordings.setdefault(message.sender, []).append(amount)

    # -- results --------------------------------------------------------------

    @property
    def snapshot_complete(self) -> bool:
        return self.snapshot_started and len(self.channels_closed) >= len(
            self.channel_recordings
        )

    def recorded_state(self) -> int:
        """The balance captured when the snapshot started here."""
        assert self.recorded_balance is not None
        return self.recorded_balance

    def recorded_in_flight(self) -> int:
        """Total of the transfers recorded on incoming channels."""
        return sum(sum(amounts) for amounts in self.channel_recordings.values())


@dataclass
class SnapshotReport:
    """Outcome of one snapshot experiment."""

    expected_total: int
    recorded_total: int
    all_started: bool
    all_complete: bool
    final_total: int

    @property
    def consistent(self) -> bool:
        return self.recorded_total == self.expected_total

    def summary(self) -> str:
        """One line: expected vs recorded totals."""
        return (
            "expected %d, snapshot recorded %d (%s), final balances %d"
            % (
                self.expected_total,
                self.recorded_total,
                "consistent" if self.consistent else "INCONSISTENT",
                self.final_total,
            )
        )


def run_snapshot_experiment(
    protocol_factory: Callable[[int, int], object],
    n_processes: int = 4,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    initial_balance: int = 100,
    transfers: int = 12,
    snapshot_at: float = 10.0,
) -> SnapshotReport:
    """Token traffic + one snapshot over the given ordering protocol."""
    apps: List[TokenTransferApp] = []

    def app_factory(process_id: int, n: int) -> TokenTransferApp:
        app = TokenTransferApp(
            initial_balance=initial_balance,
            transfers=transfers,
            seed=seed * 1000 + process_id,
            snapshot_at=snapshot_at if process_id == 0 else None,
            initiator=0,
        )
        apps.append(app)
        return app

    result = run_application(
        protocol_factory,
        app_factory,
        n_processes,
        seed=seed,
        latency=latency,
    )
    assert result.delivered_all

    expected = initial_balance * n_processes
    all_started = all(app.snapshot_started for app in apps)
    recorded = sum(
        app.recorded_state() + app.recorded_in_flight()
        for app in apps
        if app.snapshot_started
    )
    return SnapshotReport(
        expected_total=expected,
        recorded_total=recorded,
        all_started=all_started,
        all_complete=all(app.snapshot_complete for app in apps),
        final_total=sum(app.balance for app in apps),
    )
