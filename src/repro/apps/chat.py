"""Group chat: the classic motivation for causal broadcast.

Members post to the group; a member who sees a post may reply.  A reply
is causally after the post it answers, so under causal delivery no member
ever sees a reply before its question.  Under the do-nothing protocol on
a reordering network, answers routinely arrive first -- the §2 motivation
for causal ordering, as an application.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.base import AppContext, Application, run_application
from repro.events import Message
from repro.simulation.network import LatencyModel


class ChatApp(Application):
    """One chat member: posts, sees posts, sometimes replies."""

    def __init__(
        self,
        seed: int = 0,
        opening_posts: int = 1,
        reply_probability: float = 0.6,
        reply_budget: int = 3,
    ):
        self._rng = random.Random(seed)
        self.opening_posts = opening_posts
        self.reply_probability = reply_probability
        self.reply_budget = reply_budget
        self._post_counter = 0
        # What this member has seen, in the order it saw it:
        # (post_id, reply_to or None)
        self.timeline: List[Tuple[str, Optional[str]]] = []
        self.seen: set = set()
        self.own_posts: set = set()

    def _post(self, ctx: AppContext, reply_to: Optional[str]) -> None:
        self._post_counter += 1
        post_id = "post-%d-%d" % (ctx.process_id, self._post_counter)
        self.seen.add(post_id)  # authors see their own posts immediately
        self.own_posts.add(post_id)
        for member in range(ctx.n_processes):
            if member != ctx.process_id:
                ctx.send(
                    member,
                    group=post_id,
                    payload=("post", post_id, reply_to),
                )

    def on_start(self, ctx: AppContext) -> None:
        for i in range(self.opening_posts):
            delay = self._rng.uniform(0.5, 3.0)
            ctx.schedule(delay, lambda: self._post(ctx, None))

    def on_deliver(self, ctx: AppContext, message: Message) -> None:
        _, post_id, reply_to = message.payload
        if post_id in self.seen:
            return  # duplicate copy (cannot happen with one copy/member)
        self.seen.add(post_id)
        self.timeline.append((post_id, reply_to))
        if self.reply_budget > 0 and self._rng.random() < self.reply_probability:
            self.reply_budget -= 1
            self._post(ctx, reply_to=post_id)

    def anomalies(self) -> List[Tuple[str, str]]:
        """Replies seen before their question: ``(reply, question)``."""
        found = []
        seen_so_far = set(self.own_posts)  # own posts are seen at creation
        for post_id, reply_to in self.timeline:
            if reply_to is not None and reply_to not in seen_so_far:
                # The author of the reply necessarily saw the question
                # before replying; if we see the reply first, causal
                # order was violated on the way to us.
                found.append((post_id, reply_to))
            seen_so_far.add(post_id)
        return found


@dataclass
class ChatReport:
    posts: int
    members: int
    anomalies: List[Tuple[int, str, str]]  # (member, reply, question)
    delivered_all: bool

    @property
    def causally_consistent(self) -> bool:
        return not self.anomalies

    def summary(self) -> str:
        """One line: posts, members, anomaly count."""
        return "%d posts across %d members: %d reply-before-question anomalies" % (
            self.posts,
            self.members,
            len(self.anomalies),
        )


def run_chat_experiment(
    protocol_factory: Callable[[int, int], object],
    n_members: int = 4,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
) -> ChatReport:
    """One chat session over the given ordering protocol."""
    apps: List[ChatApp] = []

    def app_factory(process_id: int, n: int) -> ChatApp:
        app = ChatApp(seed=seed * 997 + process_id)
        apps.append(app)
        return app

    result = run_application(
        protocol_factory, app_factory, n_members, seed=seed, latency=latency
    )
    anomalies = [
        (member, reply, question)
        for member, app in enumerate(apps)
        for reply, question in app.anomalies()
    ]
    # Authored posts are counted once each; every member authored
    # opening posts plus its replies.
    posts = len({post_id for app in apps for post_id in app.seen})
    return ChatReport(
        posts=posts,
        members=n_members,
        anomalies=anomalies,
        delivered_all=result.delivered_all,
    )
