"""The application layer: reactive processes above a protocol.

An :class:`Application` instance runs at each process.  It may send
messages at start-up, on timers, and in reaction to deliveries; the
ordering protocol underneath decides when sends and deliveries execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.events import Message
from repro.runs.system_run import SystemRun
from repro.runs.user_run import UserRun
from repro.simulation.host import ProtocolHost
from repro.simulation.network import LatencyModel, Network, UniformLatency
from repro.simulation.sim import Simulator
from repro.simulation.trace import SimulationStats, Trace


class AppContext:
    """Services for one application instance."""

    def __init__(self, host: ProtocolHost):
        self._host = host
        self._sent = 0

    @property
    def process_id(self) -> int:
        return self._host.process_id

    @property
    def n_processes(self) -> int:
        return self._host.n_processes

    @property
    def now(self) -> float:
        return self._host.sim.now

    def send(
        self,
        receiver: int,
        color: Optional[str] = None,
        group: Optional[str] = None,
        payload: Any = None,
    ) -> Message:
        """Request a send (the user event ``x.s*``); the protocol decides
        when the message actually leaves."""
        self._sent += 1
        message = Message(
            id="p%d-%d" % (self.process_id, self._sent),
            sender=self.process_id,
            receiver=receiver,
            color=color,
            group=group,
            payload=payload,
        )
        self._host.invoke(message)
        return message

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` virtual time units."""
        self._host.sim.schedule(delay, action)


class Application:
    """Base application; override the hooks."""

    def on_start(self, ctx: AppContext) -> None:
        """Called once at time zero."""

    def on_deliver(self, ctx: AppContext, message: Message) -> None:
        """Called after the protocol delivers ``message`` here."""


@dataclass
class ApplicationResult:
    """Everything an application run produced."""

    apps: List[Application]
    trace: Trace
    stats: SimulationStats
    system_run: SystemRun
    user_run: UserRun
    delivered_all: bool


def run_application(
    protocol_factory: Callable[[int, int], object],
    app_factory: Callable[[int, int], Application],
    n_processes: int,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    fifo_channels: bool = False,
    max_events: int = 1_000_000,
) -> ApplicationResult:
    """Run reactive applications over a protocol and record the execution."""
    sim = Simulator()
    network = Network(
        sim,
        n_processes,
        latency=latency or UniformLatency(low=1.0, high=10.0),
        seed=seed,
        fifo_channels=fifo_channels,
    )
    trace = Trace(n_processes)
    stats = SimulationStats()
    hosts = []
    apps = []
    for process_id in range(n_processes):
        host = ProtocolHost(
            sim,
            network,
            trace,
            stats,
            process_id,
            protocol_factory(process_id, n_processes),
        )
        app = app_factory(process_id, n_processes)
        ctx = AppContext(host)
        host.delivery_listener = (
            lambda message, app=app, ctx=ctx: app.on_deliver(ctx, message)
        )
        hosts.append(host)
        apps.append((app, ctx))
    for host in hosts:
        host.start()
    for app, ctx in apps:
        sim.schedule(0.0, lambda app=app, ctx=ctx: app.on_start(ctx))

    executed = sim.run(max_events=max_events)
    if executed >= max_events:
        raise RuntimeError("application run exceeded %d events" % max_events)

    system_run = trace.to_system_run()
    undelivered = trace.undelivered_messages()
    return ApplicationResult(
        apps=[app for app, _ in apps],
        trace=trace,
        stats=stats,
        system_run=system_run,
        user_run=system_run.users_view(),
        delivered_all=not undelivered,
    )
