"""Runs: system view (4 events per message) and user view (2 events).

- :class:`~repro.runs.user_run.UserRun` is the paper's projected run
  ``(H, ▷)`` over send/deliver events -- the object that specifications
  talk about.
- :class:`~repro.runs.system_run.SystemRun` is the decomposed poset
  ``(H1, .., Hn, →)`` of §3.1 with invoke/send/receive/deliver events --
  the object that protocols act on.
"""

from repro.runs.user_run import UserRun
from repro.runs.system_run import SystemRun, causal_past
from repro.runs.limit_sets import (
    is_async,
    is_causally_ordered,
    is_logically_synchronous,
    message_graph,
    sync_numbering,
)
from repro.runs.enumeration import (
    enumerate_complete_runs,
    enumerate_message_assignments,
    enumerate_universe,
)
from repro.runs.construction import (
    run_from_predicate_instance,
    system_run_from_user_run,
)
from repro.runs.builder import RunBuilder
from repro.runs.metrics import RunMetrics, run_metrics
from repro.runs.diagram import render_system_run, render_user_run

__all__ = [
    "UserRun",
    "SystemRun",
    "causal_past",
    "is_async",
    "is_causally_ordered",
    "is_logically_synchronous",
    "message_graph",
    "sync_numbering",
    "enumerate_complete_runs",
    "enumerate_message_assignments",
    "enumerate_universe",
    "run_from_predicate_instance",
    "system_run_from_user_run",
    "RunBuilder",
    "RunMetrics",
    "run_metrics",
    "render_user_run",
    "render_system_run",
]
