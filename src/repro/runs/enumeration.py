"""Exhaustive enumeration of small complete user-view runs.

The containment theorems (Theorems 1, 3, 4) relate infinite sets of runs.
To check them *empirically* we enumerate finite universes: every complete
run realizable by ``n`` processes exchanging ``m`` messages.  A realizable
run is determined by (a) the sender/receiver of each message and (b) a
total order of the user events at each process, subject to acyclicity of
process order plus the ``x.s ▷ x.r`` message edges.

The paper's ground set ``X_async`` also contains non-realizable partial
orders (arbitrary cross-process causality); realizable runs are the
subset produced by actual executions, which is the universe that matters
for protocol behaviour.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.events import Event, Message
from repro.runs.user_run import UserRun


def enumerate_message_assignments(
    n_processes: int,
    n_messages: int,
    allow_self: bool = False,
    colors: Sequence[str] = (None,),
) -> Iterator[Tuple[Message, ...]]:
    """All ways to assign (sender, receiver[, color]) to ``n_messages``.

    Message ids are ``m1 .. mk``.  ``colors`` is the per-message colour
    domain; the default leaves messages uncoloured.
    """
    channels = [
        (s, r)
        for s in range(n_processes)
        for r in range(n_processes)
        if allow_self or s != r
    ]
    options = [
        (s, r, c) for (s, r) in channels for c in colors
    ]
    for combo in itertools.product(options, repeat=n_messages):
        yield tuple(
            Message(id="m%d" % (i + 1), sender=s, receiver=r, color=c)
            for i, (s, r, c) in enumerate(combo)
        )


def enumerate_complete_runs(messages: Sequence[Message]) -> Iterator[UserRun]:
    """All complete runs of exactly these messages.

    Enumerates every interleaving of user events at each process and keeps
    the combinations whose generated relation is acyclic.
    """
    processes = sorted(
        {m.sender for m in messages} | {m.receiver for m in messages}
    )
    events_at = {p: [] for p in processes}
    for message in messages:
        events_at[message.sender].append(Event.send(message.id))
        events_at[message.receiver].append(Event.deliver(message.id))

    per_process_orders = [
        list(itertools.permutations(events_at[p])) for p in processes
    ]
    for combo in itertools.product(*per_process_orders):
        sequences = {p: list(order) for p, order in zip(processes, combo)}
        run = UserRun.from_process_sequences(messages, sequences)
        if run.is_valid():
            yield run


def enumerate_universe(
    n_processes: int,
    n_messages: int,
    allow_self: bool = False,
    colors: Sequence[str] = (None,),
) -> Iterator[UserRun]:
    """Every realizable complete run of ``n_messages`` over ``n_processes``."""
    for messages in enumerate_message_assignments(
        n_processes, n_messages, allow_self=allow_self, colors=colors
    ):
        for run in enumerate_complete_runs(messages):
            yield run


def universe_size(n_processes: int, n_messages: int, allow_self: bool = False) -> int:
    """Count the universe without materializing it (used to bound tests)."""
    return sum(
        1 for _ in enumerate_universe(n_processes, n_messages, allow_self=allow_self)
    )
