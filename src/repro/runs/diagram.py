"""ASCII time diagrams for runs -- the paper's figures, as text.

Events are laid out on a column per position of a linear extension, one
row per process, so causality always reads left to right:

    P0 | m1.s  .     m2.s  .
    P1 | .     m1.r  .     m2.r

    m1: P0 -> P1
    m2: P0 -> P1
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.events import Event, EventKind
from repro.runs.system_run import SystemRun
from repro.runs.user_run import UserRun


def render_user_run(run: UserRun, legend: bool = True) -> str:
    """Render a user-view run as an ASCII time diagram.

    The column order is a linear extension of ▷, so every causal relation
    points rightward (concurrency is *not* visible -- two columns may be
    unordered).
    """
    order = run.partial_order()
    columns = order.a_linear_extension()
    processes = run.processes()
    return _render_grid(
        ["P%d" % p for p in processes],
        [
            [
                repr(event) if run.process_of_event(event) == process else None
                for event in columns
            ]
            for process in processes
        ],
        _legend_lines(run) if legend else [],
    )


def render_system_run(run: SystemRun, legend: bool = True) -> str:
    """Render a system run; columns follow a linear extension of →."""
    order = run.happened_before()
    columns = order.a_linear_extension()
    placed = {event: run.process_of(event) for event in run.events()}
    rows = []
    for process in range(run.n_processes):
        rows.append(
            [
                repr(event) if placed[event] == process else None
                for event in columns
            ]
        )
    names = ["P%d" % p for p in range(run.n_processes)]
    legend_lines = (
        [
            "%s: P%d -> P%d" % (m.id, m.sender, m.receiver)
            for m in run.messages()
            if run.has_event(Event.send(m.id))
        ]
        if legend
        else []
    )
    return _render_grid(names, rows, legend_lines)


def _legend_lines(run: UserRun) -> List[str]:
    lines = []
    for message in run.messages():
        parts = "%s: P%d -> P%d" % (message.id, message.sender, message.receiver)
        if message.color:
            parts += "  [%s]" % message.color
        lines.append(parts)
    return lines


def _render_grid(
    row_names: Sequence[str],
    rows: Sequence[Sequence[Optional[str]]],
    legend_lines: Sequence[str],
) -> str:
    if rows and rows[0]:
        widths = [
            max(
                len(rows[r][c]) if rows[r][c] else 1
                for r in range(len(rows))
            )
            for c in range(len(rows[0]))
        ]
    else:
        widths = []
    name_width = max((len(name) for name in row_names), default=0)
    lines = []
    for name, row in zip(row_names, rows):
        cells = [
            (cell or ".").ljust(width) for cell, width in zip(row, widths)
        ]
        lines.append(
            ("%s | %s" % (name.ljust(name_width), "  ".join(cells))).rstrip()
        )
    if legend_lines:
        lines.append("")
        lines.extend(legend_lines)
    return "\n".join(lines)
