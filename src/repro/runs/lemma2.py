"""The appendix constructions of Lemma 2, executable.

Lemma 2 lower-bounds every protocol class: a live general / tagged /
tagless protocol can be *forced* into any run of ``X_gn`` / ``X_td`` /
``X_U``.  The appendix proves it by exhibiting, for each prefix of the
target run, a state in which the protocol's knowledge cannot distinguish
the target from a state where liveness forces it to enable the next
event.  The three constructions:

- **A.1 (general)**: stage the run one event at a time in the order of
  the numbering scheme ``N``; at every stage the pending set
  ``R ∪ C`` is a singleton, so liveness (P2) forces the protocol to
  enable exactly the next event.
- **A.2 (tagged)**: for the process ``j`` executing next, build a run
  ``G`` with the same ``CausalPast_j`` (so a tagged protocol acts
  identically, P3) in which every other message has been received and
  delivered -- leaving ``R(G) ∪ C(G)`` a singleton again.
- **A.3 (tagless)**: the same with "same local history ``G_j``" in place
  of the causal past.

These functions build the staged prefixes and witness runs and check the
pending-set properties the proofs rely on; the test suite runs them over
exhaustively enumerated universes.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.events import Event, EventKind, Message
from repro.runs.system_run import SystemRun, causal_past, numbering_scheme


def staged_prefixes(run: SystemRun) -> Iterator[SystemRun]:
    """A.1: the prefix chain H^0 ⊂ H^1 ⊂ ... ⊂ H, one event per step,
    ordered by the numbering scheme ``N``.

    Raises ``ValueError`` when the run admits no numbering (not in
    ``X_gn``).
    """
    numbering = numbering_scheme(run)
    if numbering is None:
        raise ValueError("run admits no numbering scheme; not in X_gn")
    ordered = sorted(run.events(), key=numbering.__getitem__)
    prefix = SystemRun(run.n_processes, run.messages())
    yield prefix.copy()
    for event in ordered:
        prefix.append(run.process_of(event), event)
        yield prefix.copy()


def singleton_pending(run: SystemRun) -> bool:
    """``R(H) ∪ C(H)`` has at most one element -- the state in which the
    liveness condition P2 forces a protocol's hand."""
    pending = set()
    for process in range(run.n_processes):
        pending |= run.pending_receives(process)
        pending |= run.controllable(process)
    return len(pending) <= 1


def check_a1_staging(run: SystemRun) -> Tuple[int, int]:
    """Walk the A.1 chain; return (stages, stages with singleton pending).

    For a run in ``X_gn`` every stage must have the singleton property.
    """
    stages = forced = 0
    for prefix in staged_prefixes(run):
        stages += 1
        forced += singleton_pending(prefix)
    return stages, forced


def tagged_witness(prefix: SystemRun, j: int) -> SystemRun:
    """A.2: extend ``CausalPast_j(prefix)`` by receiving and delivering
    every in-transit message not destined to ``j``.

    The result ``G`` satisfies ``CausalPast_j(G) = CausalPast_j(prefix)``
    (a tagged protocol behaves identically in both) while only process
    ``j``'s own pending events remain.
    """
    witness = causal_past(prefix, j)
    for message in witness.messages():
        if message.receiver == j:
            continue
        send = Event.send(message.id)
        receive = Event.receive(message.id)
        if witness.has_event(send) and not witness.has_event(receive):
            witness.append(message.receiver, receive)
            witness.append(message.receiver, Event.deliver(message.id))
    return witness


def tagless_witness(prefix: SystemRun, j: int) -> SystemRun:
    """A.3: a run with the same local history ``H_j`` in which every
    other process has completed all its work.

    Keeps: ``j``'s sequence verbatim; the invoke/send of every message
    ``j`` received; the full four-event lifecycle of every message sent
    between other processes is dropped (it does not affect ``H_j``); the
    messages ``j`` sent are received and delivered at their destinations.
    """
    witness = SystemRun(prefix.n_processes, prefix.messages())
    j_sequence = prefix.sequence(j)
    incoming = {
        event.message_id
        for event in j_sequence
        if event.kind is EventKind.RECEIVE
    }
    # Senders first: the messages j received must have been sent.
    for message in prefix.messages():
        if message.id in incoming and message.sender != j:
            witness.append(message.sender, Event.invoke(message.id))
            witness.append(message.sender, Event.send(message.id))
    for event in j_sequence:
        witness.append(j, event)
    # Messages j sent are completed at their destinations.
    for message in prefix.messages():
        if message.sender != j or message.receiver == j:
            continue
        if witness.has_event(Event.send(message.id)) and not witness.has_event(
            Event.receive(message.id)
        ):
            witness.append(message.receiver, Event.receive(message.id))
            witness.append(message.receiver, Event.deliver(message.id))
    return witness


def pending_localized_at(run: SystemRun, j: int) -> bool:
    """All remaining receive/controllable events sit at process ``j``
    (and number at most one) -- the A.2/A.3 postcondition."""
    for process in range(run.n_processes):
        receives = run.pending_receives(process)
        controllables = run.controllable(process)
        if process != j:
            if receives or controllables:
                return False
        else:
            if len(receives | controllables) > 1:
                return False
    return True
