"""A fluent builder for hand-crafted runs.

Writing precise interleavings with raw ``UserRun.from_process_sequences``
is verbose; the builder reads like the time diagram:

>>> run = (RunBuilder()
...        .send("m1", frm=0, to=1)
...        .send("m2", frm=0, to=1, color="red")
...        .deliver("m2")
...        .deliver("m1")
...        .build())

Events happen in call order: each process's calls form its sequence, and
``x.s ▷ x.r`` edges come from the message structure.  ``build()``
validates and returns the :class:`~repro.runs.user_run.UserRun`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.events import Event, Message
from repro.runs.system_run import SystemRun
from repro.runs.user_run import UserRun


class RunBuilder:
    """Accumulates send/deliver steps into a user-view run."""

    def __init__(self) -> None:
        self._messages: Dict[str, Message] = {}
        self._sequences: Dict[int, List[Event]] = {}
        self._sent: Dict[str, bool] = {}

    def send(
        self,
        message_id: str,
        frm: int,
        to: int,
        color: Optional[str] = None,
        group: Optional[str] = None,
    ) -> "RunBuilder":
        """Process ``frm`` sends ``message_id`` to ``to`` -- the next event
        at ``frm``."""
        if message_id in self._messages:
            raise ValueError("message %r already sent" % message_id)
        message = Message(
            id=message_id, sender=frm, receiver=to, color=color, group=group
        )
        self._messages[message_id] = message
        self._sequences.setdefault(frm, []).append(Event.send(message_id))
        return self

    def deliver(self, message_id: str) -> "RunBuilder":
        """The receiver of ``message_id`` delivers it -- the next event at
        that process."""
        message = self._messages.get(message_id)
        if message is None:
            raise ValueError("cannot deliver %r before sending it" % message_id)
        deliver = Event.deliver(message_id)
        for sequence in self._sequences.values():
            if deliver in sequence:
                raise ValueError("message %r delivered twice" % message_id)
        self._sequences.setdefault(message.receiver, []).append(deliver)
        return self

    def drop(self, message_id: str) -> "RunBuilder":
        """Leave ``message_id`` undelivered (builds an incomplete run --
        useful for prefix tests; ``build(complete=True)`` will reject it)."""
        if message_id not in self._messages:
            raise ValueError("unknown message %r" % message_id)
        return self

    def build(self, complete: bool = True) -> UserRun:
        """Validate and return the accumulated :class:`UserRun`."""
        run = UserRun()
        for message in self._messages.values():
            run.add_message(message, with_events=False)
        for sequence in self._sequences.values():
            for event in sequence:
                run.add_event(event)
        for sequence in self._sequences.values():
            for before, after in zip(sequence, sequence[1:]):
                run.order(before, after)
        run.validate()
        if complete and not run.is_complete():
            undelivered = [
                m.id
                for m in run.messages()
                if not run.has_event(Event.deliver(m.id))
            ]
            raise ValueError(
                "run is incomplete (undelivered: %s); pass complete=False "
                "to allow it" % ", ".join(undelivered)
            )
        return run

    def build_system(self) -> SystemRun:
        """The Figure 5 expansion of the built run (adjacent star events)."""
        from repro.runs.construction import system_run_from_user_run

        return system_run_from_user_run(self.build())
