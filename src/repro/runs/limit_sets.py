"""The limit sets of §3.4: ``X_sync ⊆ X_co ⊆ X_async`` (user-view runs).

- ``X_async``: every complete partial-order run.
- ``X_co``:    runs with causally ordered deliveries
  (no pair with ``x.s ▷ y.s`` and ``y.r ▷ x.r``).
- ``X_sync``:  logically synchronous runs -- the time diagram can be drawn
  with vertical message arrows; equivalently, a numbering
  ``T : M → ℕ`` exists with ``x.h ▷ y.f ⇒ T(x) < T(y)``; equivalently, the
  *message graph* is acyclic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events import DELIVER, SEND, Event
from repro.poset import Digraph
from repro.poset.algorithms import topological_sort
from repro.runs.user_run import UserRun


def is_async(run: UserRun) -> bool:
    """Membership in ``X_async``: a valid, complete partial-order run."""
    return run.is_valid() and run.is_complete()


def causal_violations(run: UserRun) -> List[Tuple[str, str]]:
    """All ordered message pairs ``(x, y)`` with ``x.s ▷ y.s ∧ y.r ▷ x.r``."""
    violations = []
    ids = run.message_ids()
    for x in ids:
        for y in ids:
            if x == y:
                continue
            if run.before(Event.send(x), Event.send(y)) and run.before(
                Event.deliver(y), Event.deliver(x)
            ):
                violations.append((x, y))
    return violations


def is_causally_ordered(run: UserRun) -> bool:
    """Membership in ``X_co`` (assumes the run is in ``X_async``)."""
    return is_async(run) and not causal_violations(run)


def message_graph(run: UserRun) -> Digraph:
    """Directed graph on message ids: edge ``x → y`` iff some user event of
    ``x`` happens before some user event of ``y`` (``x ≠ y``).

    Because ``x.s ▷ x.r`` always holds, ``x → y`` is equivalent to
    ``x.s ▷ y.r``; a cycle in this graph is exactly a "crown"
    ``x1.s ▷ x2.r ∧ x2.s ▷ x3.r ∧ ... ∧ xk.s ▷ x1.r``.
    """
    ids = run.message_ids()
    graph = Digraph(nodes=ids)
    for x in ids:
        for y in ids:
            if x == y:
                continue
            for h in (SEND, DELIVER):
                if any(
                    run.before(Event(x, h), Event(y, f)) for f in (SEND, DELIVER)
                ):
                    graph.add_edge(x, y)
                    break
    return graph


def sync_numbering(run: UserRun) -> Optional[Dict[str, int]]:
    """A witness ``T : M → ℕ`` for logical synchrony, or ``None``.

    ``T`` satisfies the paper's SYNC condition:
    ``x.h ▷ y.f ⇒ T(x) < T(y)`` for all distinct messages ``x, y``.
    """
    graph = message_graph(run)
    try:
        order = topological_sort(graph)
    except ValueError:
        return None
    return {message_id: position for position, message_id in enumerate(order)}


def is_logically_synchronous(run: UserRun) -> bool:
    """Membership in ``X_sync``."""
    return is_async(run) and sync_numbering(run) is not None


def crown_cycles(run: UserRun) -> List[List[str]]:
    """All minimal "crowns" witnessing non-synchrony: message cycles in the
    message graph.  Empty iff the run is logically synchronous.

    Only simple cycles through distinct messages are reported; each cycle is
    rotated to start at its smallest id and returned once.
    """
    from repro.graphs.cycles import simple_cycles_digraph

    return simple_cycles_digraph(message_graph(run))


def limit_set_memberships(run: UserRun) -> Dict[str, bool]:
    """Convenience: membership of the run in all three limit sets."""
    async_member = is_async(run)
    co_member = async_member and not causal_violations(run)
    sync_member = co_member and sync_numbering(run) is not None
    return {"async": async_member, "co": co_member, "sync": sync_member}
