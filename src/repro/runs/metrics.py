"""Concurrency metrics of runs.

Quantifies *how* concurrent an execution was -- useful when comparing
protocols: the logically synchronous protocols buy their guarantee by
destroying concurrency, and these numbers show it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.events import Event
from repro.runs.user_run import UserRun


@dataclass(frozen=True)
class RunMetrics:
    """Shape statistics of one user-view run."""

    events: int
    messages: int
    comparable_pairs: int
    concurrent_pairs: int
    longest_chain: int  # height: the longest causal chain of user events
    width: int  # size of the largest antichain lower bound (greedy)
    reordered_channel_pairs: int  # same-channel pairs delivered out of order

    @property
    def concurrency_ratio(self) -> float:
        """Fraction of distinct event pairs that are concurrent: 0 for a
        totally ordered run, approaching 1 for fully independent events."""
        total = self.comparable_pairs + self.concurrent_pairs
        return self.concurrent_pairs / total if total else 0.0

    @property
    def parallelism(self) -> float:
        """Events per chain step (1.0 means fully sequential)."""
        return self.events / self.longest_chain if self.longest_chain else 0.0


def run_metrics(run: UserRun) -> RunMetrics:
    """Compute all metrics in one pass over the closure."""
    events = run.events()
    n = len(events)
    comparable = concurrent = 0
    for i in range(n):
        for j in range(i + 1, n):
            if run.before(events[i], events[j]) or run.before(
                events[j], events[i]
            ):
                comparable += 1
            else:
                concurrent += 1

    # Longest chain via longest-path DP over a linear extension.
    order = run.partial_order()
    depth: Dict[Event, int] = {}
    for event in order.a_linear_extension():
        predecessors = order.down_set(event)
        depth[event] = 1 + max((depth[p] for p in predecessors), default=0)
    longest = max(depth.values(), default=0)

    # Greedy antichain: take a maximal set of pairwise-concurrent events
    # scanning by depth (a lower bound on the true width).
    width = 0
    by_depth: Dict[int, List[Event]] = {}
    for event, d in depth.items():
        by_depth.setdefault(d, []).append(event)
    for level_events in by_depth.values():
        antichain: List[Event] = []
        for event in level_events:
            if all(run.concurrent(event, other) for other in antichain):
                antichain.append(event)
        width = max(width, len(antichain))

    # Same-channel delivery inversions (the FIFO reordering count).
    reordered = 0
    messages = run.messages()
    for i, x in enumerate(messages):
        for y in messages[i + 1 :]:
            if x.channel != y.channel:
                continue
            xs, ys = Event.send(x.id), Event.send(y.id)
            xr, yr = Event.deliver(x.id), Event.deliver(y.id)
            if not all(map(run.has_event, (xs, ys, xr, yr))):
                continue
            if run.before(xs, ys) and run.before(yr, xr):
                reordered += 1
            elif run.before(ys, xs) and run.before(xr, yr):
                reordered += 1

    return RunMetrics(
        events=n,
        messages=len(messages),
        comparable_pairs=comparable,
        concurrent_pairs=concurrent,
        longest_chain=longest,
        width=width,
        reordered_channel_pairs=reordered,
    )
