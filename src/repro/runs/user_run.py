"""The user's view of a run: a partial order over send/deliver events.

A :class:`UserRun` is the paper's projected run ``(H, ▷)`` (§3.3).  It is
the object that message-ordering specifications constrain.  A run is
*complete* when every sent message has been delivered
(``x.s ∈ H ⟺ x.r ∈ H``); specifications are sets of complete runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.events import DELIVER, SEND, Event, EventKind, Message
from repro.events.message import MessageTable
from repro.poset import PartialOrder


class UserRun:
    """A projected run ``(H, ▷)``: messages plus a partial order on their
    send and delivery events.

    The invariant ``x.s ▷ x.r`` is enforced for every message whose both
    events are present (it always holds for projections of real executions
    and for the constructed runs of the paper's proofs).
    """

    def __init__(self, messages: Iterable[Message] = ()):
        self._table = MessageTable()
        self._order = PartialOrder()
        self._present: Set[Event] = set()
        for message in messages:
            self.add_message(message)

    # Construction ---------------------------------------------------------

    def add_message(self, message: Message, with_events: bool = True) -> Message:
        """Register ``message``; by default add both its user events with
        the mandatory ``x.s ▷ x.r`` relation."""
        self._table.add(message)
        if with_events:
            self.add_event(Event.send(message.id))
            self.add_event(Event.deliver(message.id))
        return message

    def add_event(self, event: Event) -> None:
        """Add one user event (enforcing ``x.s ▷ x.r`` when paired)."""
        if event.message_id not in self._table:
            raise ValueError("event %r references unknown message" % (event,))
        if not event.kind.is_user_visible:
            raise ValueError("user runs contain only send/deliver events, got %r" % (event,))
        if event in self._present:
            return
        self._present.add(event)
        self._order.add_element(event)
        # Enforce x.s ▷ x.r whenever both events exist.
        twin_kind = DELIVER if event.kind is SEND else SEND
        twin = Event(event.message_id, twin_kind)
        if twin in self._present:
            send = event if event.kind is SEND else twin
            deliver = twin if event.kind is SEND else event
            self._order.add_relation(send, deliver)

    def order(self, before: Event, after: Event) -> None:
        """Record ``before ▷ after``."""
        for event in (before, after):
            if event not in self._present:
                raise ValueError("event %r is not part of this run" % (event,))
        self._order.add_relation(before, after)

    def order_chain(self, events: Sequence[Event]) -> None:
        """Record ``events[0] ▷ events[1] ▷ ...``."""
        for before, after in zip(events, events[1:]):
            self.order(before, after)

    def copy(self) -> "UserRun":
        """An independent copy of messages, events and order."""
        clone = UserRun()
        for message in self.messages():
            has_send = Event.send(message.id) in self._present
            has_deliver = Event.deliver(message.id) in self._present
            clone._table.add(message)
            if has_send:
                clone.add_event(Event.send(message.id))
            if has_deliver:
                clone.add_event(Event.deliver(message.id))
        for low, high in self._order.relation_pairs():
            clone._order.add_relation(low, high)
        return clone

    # Basic queries ----------------------------------------------------------

    def message(self, message_id: str) -> Message:
        """Look up a message by id."""
        return self._table[message_id]

    def messages(self) -> List[Message]:
        """All messages, sorted by id."""
        return self._table.messages()

    def message_ids(self) -> List[str]:
        """All message ids, sorted."""
        return self._table.ids()

    def events(self) -> List[Event]:
        """All present events, sorted."""
        return sorted(self._present)

    def has_event(self, event: Event) -> bool:
        """Whether the event is part of the run."""
        return event in self._present

    def __len__(self) -> int:
        return len(self._present)

    # Order queries ----------------------------------------------------------

    def before(self, a: Event, b: Event) -> bool:
        """``True`` iff ``a ▷ b`` in this run."""
        return self._order.less(a, b)

    def concurrent(self, a: Event, b: Event) -> bool:
        """Whether two events are incomparable under ▷."""
        return self._order.concurrent(a, b)

    def relation_pairs(self) -> List[Tuple[Event, Event]]:
        """The full closure of ▷ as sorted pairs."""
        return self._order.relation_pairs()

    def partial_order(self) -> PartialOrder:
        """The underlying partial order (a defensive copy)."""
        return self._order.copy()

    # Validity ----------------------------------------------------------------

    def is_valid(self) -> bool:
        """``True`` iff ▷ is a partial order (acyclic generators)."""
        return self._order.is_valid()

    def validate(self) -> None:
        """Raise if ▷ is cyclic or some ``x.s ▷ x.r`` is missing."""
        self._order.validate()
        for message in self.messages():
            send = Event.send(message.id)
            deliver = Event.deliver(message.id)
            if (
                send in self._present
                and deliver in self._present
                and not self._order.less(send, deliver)
            ):
                raise ValueError(
                    "run violates x.s ▷ x.r for message %r" % (message.id,)
                )

    def is_complete(self) -> bool:
        """``x.s ∈ H ⟺ x.r ∈ H`` for every message."""
        for message in self.messages():
            has_send = Event.send(message.id) in self._present
            has_deliver = Event.deliver(message.id) in self._present
            if has_send != has_deliver:
                return False
        return True

    def causal_chain(self, a: Event, b: Event) -> Optional[List[Event]]:
        """A shortest witnessing chain ``a ▷ ... ▷ b`` through the run's
        generating relations, or ``None`` when ``a ▷ b`` does not hold.

        The chain explains *why* two events are ordered -- each hop is a
        process-order step or a message edge -- which turns an abstract
        violation report into a story.
        """
        if not self.before(a, b):
            return None
        from collections import deque

        successors: Dict[Event, List[Event]] = {}
        for tail, head in self._order.generating_pairs():
            successors.setdefault(tail, []).append(head)
        queue = deque([(a, [a])])
        seen = {a}
        while queue:
            node, path = queue.popleft()
            if node == b:
                return path
            for nxt in sorted(successors.get(node, [])):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, path + [nxt]))
        return None  # pragma: no cover - before() guarantees a path

    # Canonical form -----------------------------------------------------------

    def canonical_form(self) -> Tuple[Tuple, ...]:
        """A hashable signature: (message attributes, closure pairs).

        Two runs are "the same partial order" in the paper's sense exactly
        when their canonical forms are equal.
        """
        message_sig = tuple(
            (m.id, m.sender, m.receiver, m.color, m.group)
            for m in self.messages()
        )
        event_sig = tuple(repr(e) for e in self.events())
        order_sig = tuple(
            (repr(a), repr(b)) for a, b in self._order.relation_pairs()
        )
        return (message_sig, event_sig, order_sig)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UserRun):
            return NotImplemented
        return self.canonical_form() == other.canonical_form()

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    def __repr__(self) -> str:
        return "UserRun(messages=%d, events=%d, relations=%d)" % (
            len(self._table),
            len(self._present),
            len(self._order.relation_pairs()),
        )

    # Process structure ----------------------------------------------------

    def events_of_process(self, process: int) -> List[Event]:
        """The user events located at ``process`` (sends it makes, deliveries
        it receives), in an arbitrary deterministic order."""
        located = []
        for message in self.messages():
            if message.sender == process:
                event = Event.send(message.id)
                if event in self._present:
                    located.append(event)
            if message.receiver == process:
                event = Event.deliver(message.id)
                if event in self._present:
                    located.append(event)
        return sorted(located)

    def process_of_event(self, event: Event) -> int:
        """The process an event executes at (sender or receiver)."""
        message = self._table[event.message_id]
        return message.sender if event.kind is SEND else message.receiver

    def processes(self) -> List[int]:
        """Every process touched by the run's messages, sorted."""
        seen: Set[int] = set()
        for message in self.messages():
            seen.add(message.sender)
            seen.add(message.receiver)
        return sorted(seen)

    # Builders ------------------------------------------------------------

    @staticmethod
    def from_process_sequences(
        messages: Iterable[Message],
        sequences: Dict[int, Sequence[Event]],
        extra_relations: Iterable[Tuple[Event, Event]] = (),
    ) -> "UserRun":
        """Build a run from per-process total orders of user events.

        ``sequences[i]`` lists the user events executed by process ``i`` in
        order.  Message edges ``x.s ▷ x.r`` are implicit; ``extra_relations``
        may add more (rarely needed).
        """
        run = UserRun()
        for message in messages:
            run._table.add(message)
        for process, sequence in sequences.items():
            for event in sequence:
                if run.process_of_event(event) != process:
                    raise ValueError(
                        "event %r does not belong to process %d" % (event, process)
                    )
                run.add_event(event)
        for sequence in sequences.values():
            for before, after in zip(sequence, list(sequence)[1:]):
                run.order(before, after)
        for before, after in extra_relations:
            run.order(before, after)
        return run
