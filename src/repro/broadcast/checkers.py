"""Direct checkers for broadcast orderings.

These run in polynomial time on recorded runs; the grouped forbidden
predicate in :mod:`repro.broadcast.orderings` is the declarative
counterpart (and the two are cross-checked in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events import Event, Message
from repro.runs.user_run import UserRun


def broadcast_groups(run: UserRun) -> Dict[str, List[Message]]:
    """Messages by group; ungrouped messages form singleton groups named
    after the message id."""
    groups: Dict[str, List[Message]] = {}
    for message in run.messages():
        key = message.group if message.group is not None else message.id
        groups.setdefault(key, []).append(message)
    return groups


def delivery_order_at(run: UserRun, process: int) -> List[str]:
    """The sequence of *groups* delivered at ``process`` (delivery order
    is total within one process)."""
    deliveries = [
        event
        for event in run.events_of_process(process)
        if event.kind.name == "DELIVER" and run.has_event(event)
    ]
    # Compute ranks first: list.sort() empties the list while running, so
    # a key function that scans `deliveries` would see nothing.
    ranks = {
        event: sum(1 for other in deliveries if run.before(other, event))
        for event in deliveries
    }
    deliveries.sort(key=ranks.__getitem__)
    order = []
    for event in deliveries:
        message = run.message(event.message_id)
        order.append(message.group if message.group is not None else message.id)
    return order


def check_total_order(run: UserRun) -> List[Tuple[str, str, int, int]]:
    """Total-order violations: ``(group_a, group_b, p, q)`` such that
    process ``p`` delivered (a copy of) ``a`` before ``b`` while ``q``
    delivered ``b`` before ``a``."""
    positions: Dict[int, Dict[str, int]] = {}
    for process in run.processes():
        order = delivery_order_at(run, process)
        positions[process] = {group: i for i, group in enumerate(order)}
    violations = []
    processes = sorted(positions)
    for i, p in enumerate(processes):
        for q in processes[i + 1 :]:
            shared = sorted(set(positions[p]) & set(positions[q]))
            for a_index, a in enumerate(shared):
                for b in shared[a_index + 1 :]:
                    p_says = positions[p][a] < positions[p][b]
                    q_says = positions[q][a] < positions[q][b]
                    if p_says != q_says:
                        if p_says:
                            violations.append((a, b, p, q))
                        else:
                            violations.append((b, a, p, q))
    return violations


def total_order_cross_check(run: UserRun, spec=None) -> bool:
    """Whether the direct total-order checker and the declarative grouped
    predicate agree on ``run``.

    This is the shared cross-check entry point: the declarative side is
    evaluated through the verification engine's batch path
    (:func:`repro.verification.engine.spec_admits`), the same machinery
    every other consumer uses, so the comparison exercises the public
    semantics rather than evaluation internals.  ``spec`` defaults to
    :data:`repro.broadcast.orderings.ATOMIC_BROADCAST`.
    """
    from repro.verification.engine import spec_admits

    if spec is None:
        from repro.broadcast.orderings import ATOMIC_BROADCAST

        spec = ATOMIC_BROADCAST
    direct_safe = check_total_order(run) == []
    return direct_safe == spec_admits(run, spec)


def check_agreement(
    run: UserRun, n_processes: Optional[int] = None
) -> List[Tuple[str, int]]:
    """Broadcast agreement: every process other than the broadcaster
    receives a copy of every group.  Returns missing ``(group, process)``
    pairs.  (Trivial under a reliable network; a sanity check on the
    workload encoding.)"""
    groups = broadcast_groups(run)
    processes = run.processes()
    if n_processes is not None:
        processes = list(range(n_processes))
    missing = []
    for group, copies in groups.items():
        sender = copies[0].sender
        covered = {message.receiver for message in copies}
        for process in processes:
            if process != sender and process not in covered:
                missing.append((group, process))
    return missing
