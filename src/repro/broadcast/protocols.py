"""Broadcast protocols: causal (tagged) and total-order (general).

Both operate on *grouped* workloads: one logical broadcast is invoked as
one unicast copy per destination, back to back, all sharing
``Message.group``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext


def _group_of(message: Message) -> str:
    return message.group if message.group is not None else message.id


class CausalBroadcastProtocol(Protocol):
    """Birman-Schiper-Stephenson causal broadcast (tagged).

    Each process keeps a vector ``delivered[k]`` counting broadcasts by
    ``Pk`` it has delivered, and a broadcast counter of its own.  A copy
    carries the broadcaster's vector timestamp ``tm``; the receiver holds
    it until ``tm[sender] == delivered[sender] + 1`` (FIFO per
    broadcaster) and ``tm[k] <= delivered[k]`` for every other ``k``
    (everything the broadcaster had delivered is delivered here too).
    """

    name = "causal-broadcast-bss"
    protocol_class = "tagged"

    def __init__(self) -> None:
        # delivered[k] counts Pk's broadcasts delivered here; our own slot
        # counts our own broadcasts (self-delivery is implicit at the
        # moment of broadcasting).
        self._delivered: Optional[List[int]] = None
        self._stamped: Dict[str, Tuple[int, ...]] = {}
        self._pending: List[Tuple[Message, Tuple[int, ...]]] = []

    def _ensure_state(self, ctx: HostContext) -> None:
        if self._delivered is None:
            self._delivered = [0] * ctx.n_processes

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self._ensure_state(ctx)
        assert self._delivered is not None
        group = _group_of(message)
        timestamp = self._stamped.get(group)
        if timestamp is None:
            # First copy of this broadcast: stamp with our delivered
            # vector, our own slot advanced to this broadcast's index.
            self._delivered[ctx.process_id] += 1
            timestamp = tuple(self._delivered)
            self._stamped[group] = timestamp
        ctx.release(message, tag=timestamp)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._ensure_state(ctx)
        self._pending.append((message, tuple(tag)))
        self._drain(ctx)

    def _deliverable(self, ctx: HostContext, sender: int, tm: Tuple[int, ...]) -> bool:
        assert self._delivered is not None
        if tm[sender] != self._delivered[sender] + 1:
            return False
        return all(
            tm[k] <= self._delivered[k]
            for k in range(ctx.n_processes)
            if k != sender
        )

    def _drain(self, ctx: HostContext) -> None:
        assert self._delivered is not None
        progress = True
        while progress:
            progress = False
            for index, (message, tm) in enumerate(self._pending):
                if self._deliverable(ctx, message.sender, tm):
                    del self._pending[index]
                    self._delivered[message.sender] = tm[message.sender]
                    ctx.deliver(message)
                    progress = True
                    break


class CausalMulticastProtocol(Protocol):
    """Causal multicast to *arbitrary destination subsets* (tagged).

    BSS assumes broadcast-to-all; this protocol handles overlapping
    groups, in the style of matrix-clock causal multicast (Raynal &
    Schiper).  Every copy of one multicast carries the same matrix
    snapshot **plus the multicast's destination set**, so a receiver
    learns about the *sibling copies* too: delivering a reply then
    correctly waits for the question's copy even though that copy
    travelled on a different channel.

    State at ``Pi``: ``M[j][k]`` = copies sent from ``Pj`` to ``Pk`` that
    ``Pi`` knows about; ``delivered[k]`` = copies from ``Pk`` delivered
    here.  A multicast to destinations ``D`` snapshots ``M``, bumps
    ``M[i][d]`` for every ``d ∈ D``, and sends each copy with
    ``(snapshot, D)``.  Delivery of a copy from ``Pj`` at ``Pq`` waits for
    ``snapshot[k][q] <= delivered[k]`` for every ``k``; on delivery the
    receiver merges the snapshot and accounts all sibling copies
    (``M[j][d] = max(M[j][d], snapshot[j][d] + 1)`` for ``d ∈ D``).
    """

    name = "causal-multicast"
    protocol_class = "tagged"

    def __init__(self) -> None:
        self._matrix: Optional[List[List[int]]] = None
        self._delivered: Optional[List[int]] = None
        self._stamped: Dict[str, Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]] = {}
        self._group_dests: Dict[str, List[int]] = {}
        self._group_copies: Dict[str, List[Message]] = {}
        self._pending: List[Tuple[Message, Tuple[Tuple[int, ...], ...], Tuple[int, ...]]] = []

    def _ensure_state(self, ctx: HostContext) -> None:
        if self._matrix is None:
            n = ctx.n_processes
            self._matrix = [[0] * n for _ in range(n)]
            self._delivered = [0] * n

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        """Copies of one multicast must be invoked back to back; the first
        copy of a new group closes the *previous* group and stamps it.

        Because the host releases what the protocol tells it to, we buffer
        the group's copies and release them together once the next group
        starts (or rely on per-copy stamping when copies arrive
        interleaved with other groups -- then each group is stamped when
        first seen, which still gives all copies one snapshot)."""
        self._ensure_state(ctx)
        assert self._matrix is not None
        group = _group_of(message)
        stamped = self._stamped.get(group)
        if stamped is None:
            snapshot = tuple(tuple(row) for row in self._matrix)
            # Destinations are discovered per copy; stamp now, account
            # incrementally as copies appear.
            self._stamped[group] = (snapshot, ())
            self._group_dests[group] = []
        snapshot, _ = self._stamped[group]
        self._group_dests[group].append(message.receiver)
        self._matrix[ctx.process_id][message.receiver] += 1
        self._group_copies.setdefault(group, []).append(message)
        # Release with the shared snapshot and the destinations known so
        # far; the final destination list is attached lazily below.
        ctx.schedule(0.0, lambda m=message, g=group: self._release(ctx, m, g))

    def _release(self, ctx: HostContext, message: Message, group: str) -> None:
        snapshot, _ = self._stamped[group]
        destinations = tuple(self._group_dests[group])
        ctx.release(message, tag=(snapshot, destinations))

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._ensure_state(ctx)
        snapshot, destinations = tag
        self._pending.append(
            (message, tuple(tuple(row) for row in snapshot), tuple(destinations))
        )
        self._drain(ctx)

    def _deliverable(self, ctx: HostContext, snapshot) -> bool:
        assert self._delivered is not None
        me = ctx.process_id
        return all(
            snapshot[k][me] <= self._delivered[k]
            for k in range(ctx.n_processes)
        )

    def _drain(self, ctx: HostContext) -> None:
        assert self._matrix is not None and self._delivered is not None
        progress = True
        while progress:
            progress = False
            for index, (message, snapshot, destinations) in enumerate(
                self._pending
            ):
                if self._deliverable(ctx, snapshot):
                    del self._pending[index]
                    sender = message.sender
                    self._delivered[sender] += 1
                    n = ctx.n_processes
                    for j in range(n):
                        for k in range(n):
                            if snapshot[j][k] > self._matrix[j][k]:
                                self._matrix[j][k] = snapshot[j][k]
                    # Account every sibling copy of this multicast.
                    for destination in destinations:
                        floor = snapshot[sender][destination] + 1
                        if self._matrix[sender][destination] < floor:
                            self._matrix[sender][destination] = floor
                    ctx.deliver(message)
                    progress = True
                    break


class FifoBroadcastProtocol(Protocol):
    """FIFO broadcast: per-origin delivery order only (tagged).

    Each broadcaster numbers its broadcasts; every site delivers each
    origin's broadcasts in that order, with no cross-origin constraint.
    The weakest rung of the broadcast ladder: FIFO ⊂ causal ⊂ total
    order.
    """

    name = "fifo-broadcast"
    protocol_class = "tagged"

    def __init__(self) -> None:
        self._next_out: Dict[str, int] = {}  # group -> assigned seq (mine)
        self._my_count = 0
        self._expected: Dict[int, int] = {}  # origin -> next seq to deliver
        self._held: Dict[Tuple[int, int], Message] = {}

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        group = _group_of(message)
        if group not in self._next_out:
            self._next_out[group] = self._my_count
            self._my_count += 1
        ctx.release(message, tag=self._next_out[group])

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._held[(message.sender, int(tag))] = message
        self._drain(ctx, message.sender)

    def _drain(self, ctx: HostContext, origin: int) -> None:
        expected = self._expected.get(origin, 0)
        while (origin, expected) in self._held:
            ctx.deliver(self._held.pop((origin, expected)))
            expected += 1
        self._expected[origin] = expected


SEQ_REQ = "seq-req"
SEQ_ASSIGN = "seq-assign"
SEQUENCER = 0


class SequencerBroadcastProtocol(Protocol):
    """Fixed-sequencer total-order broadcast (general).

    Before releasing a broadcast's copies, the broadcaster asks process 0
    for a global sequence number (control round trip); every site
    delivers broadcasts strictly in sequence order.  Requires
    broadcast-to-all traffic so no site waits forever on a gap it will
    never fill (asserted against the workload by the delivery rule:
    copies destined elsewhere do not block).
    """

    name = "sequencer-broadcast"
    protocol_class = "general"

    def __init__(self) -> None:
        self._waiting: Dict[str, List[Message]] = {}
        # Groups whose number is already assigned (copies invoked after
        # the assignment -- e.g. at the sequencer itself, whose request
        # resolves synchronously -- release immediately with that number).
        self._assigned: Dict[str, int] = {}
        # One outstanding sequence request at a time: two in-flight
        # requests from one broadcaster could be reordered, inverting the
        # sequence order against the broadcaster's own causal order.
        self._request_queue: Deque[str] = deque()
        self._requesting: bool = False
        # Sequencer state (process 0 only).
        self._next_seq = 0
        # Receiver state.
        self._next_to_deliver = 0
        self._held: Dict[int, Message] = {}
        self._known_gaps: Dict[int, bool] = {}

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        group = _group_of(message)
        if group in self._assigned:
            ctx.release(message, tag=self._assigned[group])
            return
        if group in self._waiting:
            self._waiting[group].append(message)
            return
        self._waiting[group] = [message]
        self._request_queue.append(group)
        self._pump_requests(ctx)

    def _pump_requests(self, ctx: HostContext) -> None:
        if self._requesting or not self._request_queue:
            return
        self._requesting = True
        group = self._request_queue.popleft()
        if ctx.process_id == SEQUENCER:
            self.on_control(ctx, ctx.process_id, (SEQ_REQ, group))
        else:
            ctx.send_control(SEQUENCER, (SEQ_REQ, group))

    def on_control(self, ctx: HostContext, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == SEQ_REQ:
            if ctx.process_id != SEQUENCER:
                raise RuntimeError("sequence request reached a non-sequencer")
            group = payload[1]
            seq = self._next_seq
            self._next_seq += 1
            if src == SEQUENCER:
                self.on_control(ctx, src, (SEQ_ASSIGN, group, seq))
            else:
                ctx.send_control(src, (SEQ_ASSIGN, group, seq))
        elif kind == SEQ_ASSIGN:
            group, seq = payload[1], payload[2]
            self._assigned[group] = seq
            copies = self._waiting.pop(group)
            # The broadcaster itself "delivers" at sequence position seq
            # implicitly; it releases every copy stamped with seq.
            self._note_own_position(seq)
            for copy in copies:
                ctx.release(copy, tag=seq)
            self._drain(ctx)  # the cursor may step over the new own slot
            self._requesting = False
            self._pump_requests(ctx)
        else:
            raise ValueError("unknown control payload %r" % (payload,))

    def _note_own_position(self, seq: int) -> None:
        """The broadcaster never receives its own copy; mark the slot so
        its delivery cursor can move past it."""
        self._known_gaps[seq] = True

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._held[int(tag)] = message
        self._drain(ctx)

    def _drain(self, ctx: HostContext) -> None:
        while True:
            seq = self._next_to_deliver
            if seq in self._held:
                ctx.deliver(self._held.pop(seq))
                self._next_to_deliver += 1
            elif seq in self._known_gaps:
                self._next_to_deliver += 1
            else:
                return
