"""Broadcast orderings and the grouped-predicate classifier (§7).

The unicast theory's predicate graph treats every variable as an
independent message.  A *grouped* predicate links variables through
``group(x) = group(y)`` guards: they bind copies of one logical
broadcast, which share a send but deliver at different sites.  Collapsing
each group to one super-vertex, a cycle's chain can break in **two**
ways:

- the unicast β discontinuity (in-edge ends at a delivery, out-edge
  leaves the send): crossing it needs one message boundary, exactly as in
  the paper; and
- the new multicast discontinuity: in-edge ends at a delivery **at one
  site**, out-edge leaves a delivery **at a different site**.  The two
  deliveries of one broadcast are causally unrelated, so this break also
  costs a boundary no tag can bridge.

Counting both kinds gives the grouped cycle order, and the paper's table
applies unchanged: order 0 → tagless, order 1 → tagged, ≥ 2 → general.

The flagship instance is **total-order (atomic) broadcast**: two sites
delivering two broadcasts in opposite orders is a two-super-vertex cycle
whose both junctions are cross-site delivery breaks -- order 2, so
control messages are necessary (and the sequencer protocol is the
constructive witness).  This matches the folklore that in this model
totally ordered broadcast needs coordination while causally ordered
broadcast needs only vector tags.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.classifier import ProtocolClass
from repro.events import DELIVER, SEND, EventKind
from repro.poset.digraph import Digraph
from repro.graphs.cycles import simple_cycles_digraph
from repro.predicates.ast import Conjunct, ForbiddenPredicate, deliver_of, send_of
from repro.predicates.guards import GroupGuard, ProcessGuard
from repro.predicates.spec import Specification

# ---------------------------------------------------------------------------
# The total-order broadcast specification.
# ---------------------------------------------------------------------------

# Forbidden: copies x1, x2 of one broadcast and y1, y2 of another such
# that site(x1) = site(y1) delivers x before y while site(x2) = site(y2)
# (a different site) delivers y before x.
TOTAL_ORDER_VIOLATION = ForbiddenPredicate.build(
    [
        Conjunct(deliver_of("x1"), deliver_of("y1")),
        Conjunct(deliver_of("y2"), deliver_of("x2")),
    ],
    guards=[
        GroupGuard("x1", "x2"),
        GroupGuard("y1", "y2"),
        GroupGuard("x1", "y1", equal=False),
        ProcessGuard(("x1", "receiver"), ("y1", "receiver")),
        ProcessGuard(("x2", "receiver"), ("y2", "receiver")),
        ProcessGuard(("x1", "receiver"), ("x2", "receiver"), equal=False),
    ],
    name="total-order-violation",
)

ATOMIC_BROADCAST = Specification(
    name="atomic-broadcast",
    predicates=(TOTAL_ORDER_VIOLATION,),
    description="All sites deliver broadcasts in one total order.",
)


# ---------------------------------------------------------------------------
# The grouped classifier.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupedEdge:
    """A conjunct edge between super-vertices, keeping the original
    variables so site (receiver) relations stay visible."""

    tail_super: str
    head_super: str
    p: EventKind
    q: EventKind
    tail_var: str
    head_var: str
    index: int

    def __repr__(self) -> str:
        return "%s.%s>%s.%s" % (
            self.tail_var,
            self.p.symbol,
            self.head_var,
            self.q.symbol,
        )


@dataclass(frozen=True)
class GroupedCycleReport:
    vertices: Tuple[str, ...]
    edges: Tuple[GroupedEdge, ...]
    order: int
    breaks: Tuple[str, ...]  # one description per discontinuity


@dataclass(frozen=True)
class BroadcastClassification:
    predicate: ForbiddenPredicate
    protocol_class: ProtocolClass
    cycles: Tuple[GroupedCycleReport, ...]
    min_order: Optional[int]
    notes: Tuple[str, ...] = ()


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}

    def find(self, item):
        self._parent.setdefault(item, item)
        while self._parent[item] != item:
            self._parent[item] = self._parent[self._parent[item]]
            item = self._parent[item]
        return item

    def union(self, a, b) -> None:
        self._parent[self.find(a)] = self.find(b)

    def same(self, a, b) -> bool:
        return self.find(a) == self.find(b)


def classify_broadcast(predicate: ForbiddenPredicate) -> BroadcastClassification:
    """Classify a grouped forbidden predicate.

    Model assumptions (documented in the package docstring): group-equal
    variables are copies of one broadcast -- same sender, one logical send
    event, one delivery per site.  Receiver relations at every
    delivery-to-delivery junction must be pinned by guards (equality or
    disequality); otherwise a ``ValueError`` asks the caller to refine the
    predicate.
    """
    groups = _UnionFind()
    receivers = _UnionFind()
    receiver_diseq: List[Tuple[str, str]] = []
    for guard in predicate.guards:
        if isinstance(guard, GroupGuard) and guard.equal:
            groups.union(guard.left, guard.right)
        elif isinstance(guard, ProcessGuard):
            if guard.left[1] == "receiver" and guard.right[1] == "receiver":
                if guard.equal:
                    receivers.union(guard.left[0], guard.right[0])
                else:
                    receiver_diseq.append((guard.left[0], guard.right[0]))

    def super_of(variable: str) -> str:
        members = sorted(
            v for v in predicate.variables if groups.same(v, variable)
        )
        return members[0]

    def receiver_relation(a: str, b: str) -> Optional[bool]:
        """True = same site, False = different sites, None = unknown."""
        if receivers.same(a, b):
            return True
        for left, right in receiver_diseq:
            if (receivers.same(a, left) and receivers.same(b, right)) or (
                receivers.same(a, right) and receivers.same(b, left)
            ):
                return False
        return None

    edges = [
        GroupedEdge(
            tail_super=super_of(conjunct.left.variable),
            head_super=super_of(conjunct.right.variable),
            p=conjunct.left.kind,
            q=conjunct.right.kind,
            tail_var=conjunct.left.variable,
            head_var=conjunct.right.variable,
            index=index,
        )
        for index, conjunct in enumerate(predicate.conjuncts)
    ]

    vertices = sorted({e.tail_super for e in edges} | {e.head_super for e in edges})
    graph = Digraph(nodes=vertices)
    for edge in edges:
        if edge.tail_super != edge.head_super:
            graph.add_edge(edge.tail_super, edge.head_super)

    reports: List[GroupedCycleReport] = []
    for vertex_cycle in simple_cycles_digraph(graph):
        k = len(vertex_cycle)
        options = [
            [
                e
                for e in edges
                if e.tail_super == vertex_cycle[i]
                and e.head_super == vertex_cycle[(i + 1) % k]
            ]
            for i in range(k)
        ]
        for combo in itertools.product(*options):
            order, breaks = _grouped_order(
                vertex_cycle, combo, receiver_relation
            )
            reports.append(
                GroupedCycleReport(
                    vertices=tuple(vertex_cycle),
                    edges=tuple(combo),
                    order=order,
                    breaks=tuple(breaks),
                )
            )

    notes: List[str] = []
    if not reports:
        return BroadcastClassification(
            predicate=predicate,
            protocol_class=ProtocolClass.NOT_IMPLEMENTABLE,
            cycles=(),
            min_order=None,
            notes=("no cycle among broadcast super-vertices",),
        )
    min_order = min(report.order for report in reports)
    if min_order == 0:
        protocol_class = ProtocolClass.TAGLESS
        notes.append("a chain closes without any discontinuity: unsatisfiable")
    elif min_order == 1:
        protocol_class = ProtocolClass.TAGGED
        notes.append("one discontinuity per cycle: tagging suffices")
    else:
        protocol_class = ProtocolClass.GENERAL
        notes.append(
            "every cycle breaks at >= 2 points (message boundaries or "
            "cross-site deliveries): control messages are necessary"
        )
    return BroadcastClassification(
        predicate=predicate,
        protocol_class=protocol_class,
        cycles=tuple(reports),
        min_order=min_order,
        notes=tuple(notes),
    )


def _grouped_order(vertex_cycle, combo, receiver_relation):
    order = 0
    breaks: List[str] = []
    k = len(vertex_cycle)
    for i in range(k):
        incoming = combo[(i - 1) % k]
        outgoing = combo[i]
        q_in, p_out = incoming.q, outgoing.p
        if q_in is SEND:
            continue  # chain arrives at the broadcast's (shared) send
        if p_out is SEND:
            order += 1
            breaks.append(
                "β at %s: %r into %r" % (vertex_cycle[i], incoming, outgoing)
            )
            continue
        # delivery in, delivery out: connected only at the same site.
        relation = receiver_relation(incoming.head_var, outgoing.tail_var)
        if relation is None:
            raise ValueError(
                "receiver relation between %s and %s is not pinned by "
                "guards; refine the predicate with receiver equality or "
                "disequality" % (incoming.head_var, outgoing.tail_var)
            )
        if not relation:
            order += 1
            breaks.append(
                "cross-site deliveries at %s: %r into %r"
                % (vertex_cycle[i], incoming, outgoing)
            )
    return order, breaks
