"""Grouped (broadcast) workload generation."""

from __future__ import annotations

import random
from typing import List

from repro.simulation.workloads import SendRequest, Workload


def group_broadcasts(
    n_processes: int, rounds: int, seed: int = 0
) -> Workload:
    """Each round a random process broadcasts to every other process;
    the copies of one broadcast share a ``group`` id."""
    if n_processes < 2:
        raise ValueError("broadcasts need at least two processes")
    rng = random.Random(seed)
    requests: List[SendRequest] = []
    t = 0.0
    for round_index in range(rounds):
        t += rng.uniform(0.5, 2.0)
        origin = rng.randrange(n_processes)
        group = "b%d" % (round_index + 1)
        for receiver in range(n_processes):
            if receiver != origin:
                requests.append(
                    SendRequest(
                        time=t,
                        sender=origin,
                        receiver=receiver,
                        group=group,
                    )
                )
    return Workload(
        name="broadcasts-%dp-%dr-seed%d" % (n_processes, rounds, seed),
        n_processes=n_processes,
        requests=tuple(requests),
    )


def random_multicasts(
    n_processes: int, rounds: int, seed: int = 0, min_size: int = 1
) -> Workload:
    """Each round a random process multicasts to a random *subset* of the
    others (overlapping groups -- the case broadcast-to-all protocols do
    not cover)."""
    if n_processes < 2:
        raise ValueError("multicasts need at least two processes")
    rng = random.Random(seed)
    requests: List[SendRequest] = []
    t = 0.0
    for round_index in range(rounds):
        t += rng.uniform(0.5, 2.0)
        origin = rng.randrange(n_processes)
        others = [p for p in range(n_processes) if p != origin]
        size = rng.randint(min(min_size, len(others)), len(others))
        destinations = rng.sample(others, size)
        group = "g%d" % (round_index + 1)
        for receiver in sorted(destinations):
            requests.append(
                SendRequest(time=t, sender=origin, receiver=receiver, group=group)
            )
    return Workload(
        name="multicasts-%dp-%dr-seed%d" % (n_processes, rounds, seed),
        n_processes=n_processes,
        requests=tuple(requests),
    )
