"""Multicast extension (the paper's §7: "the results in this paper can be
extended to incorporate multicast messages").

A logical broadcast is modelled as a *group* of unicast copies sharing
``Message.group``.  This package provides:

- grouped workload generators,
- broadcast orderings: causal broadcast (still the unicast causal
  predicate) and total-order / atomic broadcast (a *grouped* forbidden
  predicate plus a direct polynomial checker),
- protocols: Birman-Schiper-Stephenson causal broadcast (tagged) and a
  fixed-sequencer total-order broadcast (general -- control messages,
  exactly as the characterization predicts, since a logically
  synchronous run is always totally ordered and total order fails for
  merely causal runs).

Boundary of the base theory: the predicate-graph classifier treats
variables as independent messages, so it cannot see that group-equal
variables share a send; grouped predicates are therefore classified by
:func:`classify_broadcast` (which collapses each group to one
super-message) rather than by ``repro.classify``.
"""

from repro.broadcast.orderings import (
    ATOMIC_BROADCAST,
    TOTAL_ORDER_VIOLATION,
    classify_broadcast,
)
from repro.broadcast.checkers import (
    broadcast_groups,
    check_agreement,
    check_total_order,
    delivery_order_at,
    total_order_cross_check,
)
from repro.broadcast.protocols import (
    CausalBroadcastProtocol,
    CausalMulticastProtocol,
    FifoBroadcastProtocol,
    SequencerBroadcastProtocol,
)
from repro.broadcast.workloads import group_broadcasts, random_multicasts

__all__ = [
    "ATOMIC_BROADCAST",
    "TOTAL_ORDER_VIOLATION",
    "classify_broadcast",
    "broadcast_groups",
    "delivery_order_at",
    "check_total_order",
    "check_agreement",
    "total_order_cross_check",
    "CausalBroadcastProtocol",
    "CausalMulticastProtocol",
    "FifoBroadcastProtocol",
    "SequencerBroadcastProtocol",
    "group_broadcasts",
    "random_multicasts",
]
