"""Event kinds and event identities.

An :class:`Event` is an immutable pair ``(message_id, kind)``.  Events are
hashable and totally ordered (lexicographically) so they can serve as keys
of partial-order structures and be printed deterministically.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Tuple


class EventKind(enum.Enum):
    """The four system-event kinds of a message.

    The enum values are chosen so that sorting by value yields the order in
    which the events of a single message must occur:
    ``INVOKE < SEND < RECEIVE < DELIVER``.
    """

    INVOKE = 0  # x.s* : the user requests the send
    SEND = 1  # x.s  : the protocol releases the message
    RECEIVE = 2  # x.r* : the message arrives at the destination process
    DELIVER = 3  # x.r  : the protocol delivers the message to the user

    def __lt__(self, other: "EventKind") -> bool:
        if not isinstance(other, EventKind):
            return NotImplemented
        return self.value < other.value

    @property
    def is_user_visible(self) -> bool:
        """``True`` for the events retained by ``UsersView`` (send, deliver)."""
        return self in USER_KINDS

    @property
    def is_star(self) -> bool:
        """``True`` for the request events ``x.s*`` and ``x.r*``."""
        return self in (EventKind.INVOKE, EventKind.RECEIVE)

    @property
    def symbol(self) -> str:
        """The paper's notation for this kind (``s*``, ``s``, ``r*``, ``r``)."""
        return _SYMBOLS[self]


INVOKE = EventKind.INVOKE
SEND = EventKind.SEND
RECEIVE = EventKind.RECEIVE
DELIVER = EventKind.DELIVER

USER_KINDS = frozenset({EventKind.SEND, EventKind.DELIVER})

_SYMBOLS = {
    EventKind.INVOKE: "s*",
    EventKind.SEND: "s",
    EventKind.RECEIVE: "r*",
    EventKind.DELIVER: "r",
}

_SYMBOL_TO_KIND = {symbol: kind for kind, symbol in _SYMBOLS.items()}


def kind_from_symbol(symbol: str) -> EventKind:
    """Parse the paper's notation (``s*``, ``s``, ``r*``, ``r``) to a kind.

    >>> kind_from_symbol("s") is EventKind.SEND
    True
    """
    try:
        return _SYMBOL_TO_KIND[symbol]
    except KeyError:
        raise ValueError(
            "unknown event symbol %r; expected one of %s"
            % (symbol, sorted(_SYMBOL_TO_KIND))
        ) from None


@functools.total_ordering
@dataclass(frozen=True)
class Event:
    """An event of a run: a specific kind of a specific message.

    ``Event`` compares and hashes by ``(message_id, kind.value)`` so that
    collections of events are deterministic regardless of insertion order.
    """

    message_id: str
    kind: EventKind

    def __post_init__(self) -> None:
        if not isinstance(self.kind, EventKind):
            raise TypeError("kind must be an EventKind, got %r" % (self.kind,))

    @property
    def sort_key(self) -> Tuple[str, int]:
        return (self.message_id, self.kind.value)

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:
        return "%s.%s" % (self.message_id, self.kind.symbol)

    # Convenience constructors -------------------------------------------------

    @staticmethod
    def invoke(message_id: str) -> "Event":
        """The ``x.s*`` event of the message."""
        return Event(message_id, EventKind.INVOKE)

    @staticmethod
    def send(message_id: str) -> "Event":
        """The ``x.s`` event of the message."""
        return Event(message_id, EventKind.SEND)

    @staticmethod
    def receive(message_id: str) -> "Event":
        """The ``x.r*`` event of the message."""
        return Event(message_id, EventKind.RECEIVE)

    @staticmethod
    def deliver(message_id: str) -> "Event":
        """The ``x.r`` event of the message."""
        return Event(message_id, EventKind.DELIVER)
