"""Event and message model for decomposed-poset runs.

The paper models every user-level message ``x`` as four system events:

- ``x.s*`` -- the *invoke* event (the user requests the send),
- ``x.s``  -- the *send* event (the protocol releases the message),
- ``x.r*`` -- the *receive* event (the message arrives at the destination),
- ``x.r``  -- the *delivery* event (the protocol hands it to the user).

The user's view of a run only retains ``x.s`` and ``x.r``.
"""

from repro.events.events import (
    DELIVER,
    INVOKE,
    RECEIVE,
    SEND,
    USER_KINDS,
    Event,
    EventKind,
)
from repro.events.message import Message, MessageId

__all__ = [
    "Event",
    "EventKind",
    "INVOKE",
    "SEND",
    "RECEIVE",
    "DELIVER",
    "USER_KINDS",
    "Message",
    "MessageId",
]
