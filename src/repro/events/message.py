"""Messages and their attributes.

The paper's §4.1 allows forbidden predicates to be *guarded* by message
attributes: the sending process, the receiving process, and an arbitrary
``colour`` attribute (for example "the red marker message").  A
:class:`Message` carries these attributes; predicates consult them through
attribute guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# A message identifier.  We use short strings ("m1", "x", ...) so that
# events print in the paper's notation ("m1.s", "x.r*").
MessageId = str


@dataclass(frozen=True)
class Message:
    """A user-level message with ordering-relevant attributes.

    Parameters
    ----------
    id:
        Unique identifier within a run.
    sender:
        Index of the sending process.
    receiver:
        Index of the receiving process.
    color:
        Optional colour tag used by marker/flush specifications
        (for example ``"red"`` for the red marker message).
    group:
        Optional broadcast-group id: the copies of one logical multicast
        share a group (the paper's §7 extension; see
        :mod:`repro.broadcast`).
    payload:
        Opaque application payload; never inspected by the theory.
    ordering_key:
        Optional explicit ordering key (the sharded runtime's unit of
        ordering, :mod:`repro.net.shard`).  When ``None`` the message's
        *effective* key defaults to its channel -- the sender-destination
        pair -- so unkeyed traffic degenerates to per-channel ordering.
    """

    id: MessageId
    sender: int
    receiver: int
    color: Optional[str] = None
    group: Optional[str] = None
    payload: Any = None
    ordering_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sender < 0 or self.receiver < 0:
            raise ValueError(
                "process indices must be non-negative, got sender=%d receiver=%d"
                % (self.sender, self.receiver)
            )

    @property
    def channel(self) -> "tuple[int, int]":
        """The ordered channel ``(sender, receiver)`` this message travels on."""
        return (self.sender, self.receiver)

    @property
    def effective_key(self) -> str:
        """The ordering key this message is sequenced under.

        An explicit ``ordering_key`` wins; otherwise the key is derived
        from the channel (``"p<sender>-p<receiver>"``), which makes
        per-key ordering coincide with per-channel (FIFO) ordering for
        unkeyed traffic.
        """
        if self.ordering_key is not None:
            return self.ordering_key
        return "p%d-p%d" % (self.sender, self.receiver)

    def attribute(self, name: str) -> Any:
        """Look up a guard attribute by name.

        Supported names mirror the paper: ``sender`` (``process(x.s)``),
        ``receiver`` (``process(x.r)``) and ``color``; ``key`` exposes
        the sharded runtime's :attr:`effective_key`.
        """
        if name == "sender":
            return self.sender
        if name == "receiver":
            return self.receiver
        if name == "color":
            return self.color
        if name == "group":
            return self.group
        if name == "key":
            return self.effective_key
        raise KeyError("unknown message attribute %r" % (name,))


@dataclass
class MessageTable:
    """A mutable registry of the messages of a run, keyed by id."""

    _messages: Dict[MessageId, Message] = field(default_factory=dict)

    def add(self, message: Message) -> Message:
        if message.id in self._messages:
            raise ValueError("duplicate message id %r" % (message.id,))
        self._messages[message.id] = message
        return message

    def __getitem__(self, message_id: MessageId) -> Message:
        return self._messages[message_id]

    def __contains__(self, message_id: MessageId) -> bool:
        return message_id in self._messages

    def __iter__(self):
        return iter(sorted(self._messages))

    def __len__(self) -> int:
        return len(self._messages)

    def ids(self) -> "list[MessageId]":
        return sorted(self._messages)

    def messages(self) -> "list[Message]":
        return [self._messages[mid] for mid in self.ids()]
