"""Protocol profiling: where does each protocol pay for its ordering?

Runs a workload under several protocols with the instrumentation bus
attached and breaks each message's end-to-end latency into the paper's
three phases -- send inhibition (``x.s* -> x.s``), network transit
(``x.s -> x.r*``), and delivery buffering (``x.r* -> x.r``) -- alongside
the wire overheads (control messages/bytes, tag bytes).  Backs the
``repro profile`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.bus import Bus
from repro.obs.metrics import MetricsRecorder, MetricsRegistry
from repro.obs.watchdog import Watchdog
from repro.simulation.network import LatencyModel
from repro.simulation.runner import run_simulation
from repro.simulation.workloads import Workload


def catalog_protocols() -> "dict[str, Callable[[int, int], object]]":
    """The named protocol factories available for profiling (a view of
    the single :func:`repro.protocols.catalogue` registry)."""
    from repro.protocols.registry import cached_catalogue

    return {name: entry.factory for name, entry in cached_catalogue().items()}


#: The default comparison set of ``repro profile``.
DEFAULT_PROFILE_PROTOCOLS = ("tagless", "fifo", "causal-rst", "sync-coord")


@dataclass(frozen=True)
class ProtocolProfile:
    """Per-phase cost breakdown of one protocol on one workload."""

    name: str
    messages: int
    delivered: int
    undelivered: int
    inhibition_mean: float
    inhibition_total: float
    network_mean: float
    buffering_mean: float
    buffering_total: float
    end_to_end_mean: float
    end_to_end_p95: float
    control_messages: int
    control_bytes: int
    tag_bytes_per_message: float
    reordered_arrivals: int

    def as_row(self) -> Tuple:
        """The profile formatted for table rendering (matches HEADERS)."""
        return (
            self.name,
            self.messages,
            "%.2f" % self.inhibition_mean,
            "%.2f" % self.network_mean,
            "%.2f" % self.buffering_mean,
            "%.2f" % self.end_to_end_mean,
            "%.2f" % self.end_to_end_p95,
            self.control_messages,
            self.control_bytes,
            "%.1f" % self.tag_bytes_per_message,
            self.reordered_arrivals,
            self.undelivered,
        )

    HEADERS = (
        "protocol",
        "msgs",
        "inhibit",
        "network",
        "buffer",
        "invoke->r",
        "p95",
        "ctrl",
        "ctrlB",
        "tagB/msg",
        "reordered",
        "stuck",
    )


def profile_protocol(
    name: str,
    factory: Callable[[int, int], object],
    workload: Workload,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    fifo_channels: bool = False,
) -> ProtocolProfile:
    """Run one instrumented simulation and reduce it to a profile."""
    bus = Bus()
    recorder = MetricsRecorder(bus, MetricsRegistry())
    watchdog = Watchdog(bus)
    result = run_simulation(
        factory,
        workload,
        seed=seed,
        latency=latency,
        fifo_channels=fifo_channels,
        bus=bus,
    )
    registry = recorder.registry
    inhibition = registry.histogram("latency.inhibition")
    network = registry.histogram("latency.network")
    buffering = registry.histogram("latency.buffering")
    e2e = registry.histogram("latency.end_to_end")
    user_messages = registry.counter("messages.user").value
    tag_bytes = registry.counter("tag.bytes").value
    return ProtocolProfile(
        name=name,
        messages=int(registry.counter("messages.invoked").value),
        delivered=int(registry.counter("messages.delivered").value),
        undelivered=len(watchdog.stuck(protocols=result.protocols)),
        inhibition_mean=inhibition.mean,
        inhibition_total=inhibition.total,
        network_mean=network.mean,
        buffering_mean=buffering.mean,
        buffering_total=buffering.total,
        end_to_end_mean=e2e.mean,
        end_to_end_p95=e2e.percentile(95),
        control_messages=int(registry.counter("net.control.messages").value),
        control_bytes=int(registry.counter("net.control.bytes").value),
        tag_bytes_per_message=(
            tag_bytes / user_messages if user_messages else 0.0
        ),
        reordered_arrivals=int(registry.counter("channel.reordered").value),
    )


def profile_protocols(
    entries: Sequence[Tuple[str, Callable[[int, int], object]]],
    workload: Workload,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    fifo_channels: bool = False,
) -> List[ProtocolProfile]:
    """Profile each ``(name, factory)`` on the same workload and seed."""
    return [
        profile_protocol(
            name,
            factory,
            workload,
            seed=seed,
            latency=latency,
            fifo_channels=fifo_channels,
        )
        for name, factory in entries
    ]


def render_profiles(profiles: Sequence[ProtocolProfile]) -> str:
    """The profiles as a monospace comparison table."""
    rows = [profile.as_row() for profile in profiles]
    columns = list(zip(ProtocolProfile.HEADERS, *rows))
    widths = [max(len(str(cell)) for cell in column) for column in columns]

    def format_row(cells) -> str:
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [
        format_row(ProtocolProfile.HEADERS),
        format_row(["-" * width for width in widths]),
    ]
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)
