"""Flight recorder: a bounded ring of per-host observability records.

Every :class:`~repro.net.host.NetHost` keeps a :class:`FlightRecorder`
taping the last :data:`DEFAULT_CAPACITY` probe events -- message
lifecycle records (invoke/send/receive/deliver) plus the fault/recovery
stream -- each stamped with the wall clock, the host's virtual clock, a
monotone sequence number and the recorder's **vector timestamp**.  The
vector clock advances exactly like the verification engine's
:class:`~repro.verification.engine.causality.OnlineCausality`: the local
component ticks on every user event executed here (send, deliver) and a
delivery joins the sender's clock, carried over the wire on the USER
frame (see :meth:`vc_for`).  Records are therefore causally comparable
*across* hosts even though each ring is purely local.

The ring is deterministically serializable (:meth:`to_wire`): a
collector pulls it over a TRACE frame, a violation dumps the surrounding
window into the forensics report, and a draining host can persist it --
which is also the captured-event groundwork for the ROADMAP's durable
replay log.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.bus import Bus, ProbeEvent

__all__ = [
    "CONTEXT_PROBES",
    "DEFAULT_CAPACITY",
    "LIFECYCLE_KINDS",
    "FlightRecord",
    "FlightRecorder",
]

#: Default ring size.  At the net runtime's loopback rates (~1.4k msgs/s
#: per host pair, four lifecycle records per message) this holds roughly
#: the last second of traffic per host.
DEFAULT_CAPACITY = 4096

#: Probe points taped by the recorder, and the record kind each becomes.
#: Lifecycle probes map onto the paper's event kinds; everything else
#: keeps its probe name.
LIFECYCLE_KINDS = {
    "host.invoke": "invoke",
    "host.release": "send",
    "host.receive": "receive",
    "host.deliver": "deliver",
}

#: Non-lifecycle probes worth keeping in the ring (the fault/recovery
#: stream an operator replays when diagnosing a violation window).
CONTEXT_PROBES = (
    "host.inhibit",
    "fault.drop",
    "fault.dup",
    "fault.partition",
    "fault.spike",
    "retx.send",
    "retx.dup",
)


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


@dataclass(frozen=True)
class FlightRecord:
    """One taped event: wall + virtual time, kind, payload, vector clock."""

    seq: int
    wall: float
    time: float  # the host's virtual clock at the probe
    kind: str  # "invoke"/"send"/"receive"/"deliver" or a probe name
    data: Dict[str, Any] = field(default_factory=dict)
    vc: Dict[int, int] = field(default_factory=dict)

    @property
    def message_id(self) -> Optional[str]:
        return self.data.get("message_id")

    def to_wire(self) -> Dict[str, Any]:
        """A JSON-safe encoding (vector-clock keys become strings)."""
        return {
            "seq": self.seq,
            "wall": self.wall,
            "t": self.time,
            "kind": self.kind,
            "data": _jsonable(self.data),
            "vc": {str(process): count for process, count in sorted(self.vc.items())},
        }

    @classmethod
    def from_wire(cls, body: Dict[str, Any]) -> "FlightRecord":
        """Strict inverse of :meth:`to_wire`."""
        try:
            return cls(
                seq=int(body["seq"]),
                wall=float(body["wall"]),
                time=float(body["t"]),
                kind=str(body["kind"]),
                data=dict(body.get("data") or {}),
                vc={
                    int(process): int(count)
                    for process, count in (body.get("vc") or {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError("bad flight record %r: %s" % (body, exc)) from exc


class FlightRecorder:
    """A bounded, causally-stamped ring buffer over a host's probe bus.

    Attach with :meth:`attach`; the recorder subscribes to the lifecycle
    probes and :data:`CONTEXT_PROBES`.  The host feeds cross-host
    causality in two places: :meth:`vc_for` supplies the vector clock a
    USER frame piggybacks (keyed by message id so retransmissions carry
    the *original* send's clock), and :meth:`observe_remote` stashes the
    clock arriving on an inbound frame so the eventual delivery joins it.
    """

    def __init__(
        self,
        process_id: int,
        capacity: int = DEFAULT_CAPACITY,
        wall: Callable[[], float] = _time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % capacity)
        self.process_id = process_id
        self.capacity = capacity
        self._wall = wall
        self._ring: "deque[FlightRecord]" = deque(maxlen=capacity)
        self._seq = 0
        #: This host's running vector clock (process -> user-event count).
        self._clock: Dict[int, int] = {}
        #: message id -> clock piggybacked on its (first) release.
        self._release_vc: Dict[str, Dict[int, int]] = {}
        #: message id -> sender clock stashed from an inbound USER frame.
        self._remote_vc: Dict[str, Dict[int, int]] = {}
        self._unsubscribers: List[Callable[[], None]] = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, bus: Bus) -> None:
        """Subscribe to the lifecycle and context probes of ``bus``."""
        for probe in LIFECYCLE_KINDS:
            self._unsubscribers.append(bus.subscribe(probe, self._on_lifecycle))
        for probe in CONTEXT_PROBES:
            self._unsubscribers.append(bus.subscribe(probe, self._on_context))

    def close(self) -> None:
        """Detach from the bus (the ring remains queryable)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers = []

    # -- cross-host causality -------------------------------------------------

    def vc_for(self, message_id: str) -> Optional[Dict[int, int]]:
        """The clock to piggyback on an outbound USER frame.

        Stamped at release time, so a retransmission repeats the original
        send's causal position (mirroring the wall-time stamp reuse).
        """
        return self._release_vc.get(message_id)

    def observe_remote(self, message_id: str, vc: Dict[int, int]) -> None:
        """Stash the sender clock carried on an inbound USER frame."""
        self._remote_vc.setdefault(message_id, dict(vc))

    # -- probe handlers -------------------------------------------------------

    def _on_lifecycle(self, event: ProbeEvent) -> None:
        kind = LIFECYCLE_KINDS[event.probe]
        message_id = event.data.get("message_id")
        if kind == "send":
            self._tick()
            if message_id is not None:
                self._release_vc.setdefault(message_id, dict(self._clock))
        elif kind == "deliver":
            if message_id is not None:
                remote = self._remote_vc.pop(message_id, None)
                if remote is None:
                    # Self-addressed messages loop back without a frame.
                    remote = self._release_vc.get(message_id)
                if remote is not None:
                    self._join(remote)
            self._tick()
        self._append(kind, event)

    def _on_context(self, event: ProbeEvent) -> None:
        self._append(event.probe, event)

    def _tick(self) -> None:
        self._clock[self.process_id] = self._clock.get(self.process_id, 0) + 1

    def _join(self, other: Dict[int, int]) -> None:
        for process, count in other.items():
            if self._clock.get(process, 0) < count:
                self._clock[process] = count

    def _append(self, kind: str, event: ProbeEvent) -> None:
        self._ring.append(
            FlightRecord(
                seq=self._seq,
                wall=self._wall(),
                time=event.time,
                kind=kind,
                data=dict(event.data),
                vc=dict(self._clock),
            )
        )
        self._seq += 1

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total records ever taped (>= ``len`` once the ring wraps)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Records lost to ring overwrite."""
        return self._seq - len(self._ring)

    @property
    def clock(self) -> Dict[int, int]:
        """The host's current vector clock (a copy)."""
        return dict(self._clock)

    def records(self) -> List[FlightRecord]:
        """The retained records, oldest first."""
        return list(self._ring)

    def window(
        self, around_wall: float, before: float = 1.0, after: float = 1.0
    ) -> List[FlightRecord]:
        """The retained records within ``[around-before, around+after]``."""
        lo, hi = around_wall - before, around_wall + after
        return [record for record in self._ring if lo <= record.wall <= hi]

    def to_wire(self) -> Dict[str, Any]:
        """The whole ring as a deterministic JSON-safe dump."""
        return {
            "process": self.process_id,
            "capacity": self.capacity,
            "recorded": self._seq,
            "dropped": self.dropped,
            "clock": {str(p): c for p, c in sorted(self._clock.items())},
            "records": [record.to_wire() for record in self._ring],
        }

    @classmethod
    def records_from_wire(cls, body: Dict[str, Any]) -> List[FlightRecord]:
        """Decode the record list of a :meth:`to_wire` dump."""
        return [FlightRecord.from_wire(item) for item in body.get("records", [])]
