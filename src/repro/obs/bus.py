"""The instrumentation bus: typed probe points, zero overhead when off.

Every instrumented component (:class:`~repro.simulation.sim.Simulator`,
:class:`~repro.simulation.network.Network`,
:class:`~repro.simulation.host.ProtocolHost`, the verification harness)
accepts an optional bus and emits :class:`ProbeEvent` records at the probe
points below.  With no bus attached (the default) the instrumented code
performs a single ``is None`` check per probe site; with a bus attached
but no subscribers, :meth:`Bus.emit` is never even called because call
sites also consult the :attr:`Bus.active` flag.  Subscribers only
*observe* -- they cannot reschedule events or consume randomness -- so
attaching a bus never perturbs the deterministic schedule.

Probe points (a stable, documented contract -- tools may rely on these
names and their payload fields):

===============  ============================================================
probe            payload fields
===============  ============================================================
``sim.step``     ``sequence``, ``pending``
``net.send``     ``src``, ``dst``, ``message_id``, ``tag``, ``delay``,
                 ``arrival``
``net.control``  ``src``, ``dst``, ``payload``, ``delay``, ``arrival``
``host.invoke``  ``message_id``, ``process``, ``receiver``
``host.inhibit`` ``message_id``, ``process``
``host.release`` ``message_id``, ``process``, ``receiver``, ``tag_bytes``
``host.receive`` ``message_id``, ``process``, ``sender``
``host.deliver`` ``message_id``, ``process``, ``sender``, ``delayed``
``verify.check`` ``spec``, ``protocol``, ``workload``, ``safe``, ``live``,
                 ``violations``
``verify.step``  ``event``, ``sequence``, ``messages``
``verify.match`` ``event``, ``predicate``, ``assignment``
``mc.schedule``  ``index``, ``depth``, ``outcome``
``mc.prune``     ``reason``, ``depth``
``mc.violation`` ``predicate``, ``assignment``, ``depth``
``fault.drop``   ``src``, ``dst``, ``kind``, ``message_id``, ``reason``
``fault.dup``    ``src``, ``dst``, ``kind``, ``message_id``
``fault.partition`` ``src``, ``dst``, ``kind``, ``message_id``
``fault.spike``  ``src``, ``dst``, ``kind``, ``message_id``, ``extra_delay``
``crash``        ``process``
``restart``      ``process``
``retx.send``    ``process``, ``message_id``, ``receiver``, ``kind``
``retx.ack``     ``process``, ``peer``, ``cumulative``
``retx.dup``     ``process``, ``message_id``, ``sender``
``retx.resume``  ``peer``, ``unacked``
``timer.fire``   ``process``
``link.up``      ``process``, ``peer``, ``previous``
``link.suspect`` ``process``, ``peer``, ``previous``
``link.down``    ``process``, ``peer``, ``previous``
``link.redial``  ``process``, ``peer``, ``attempts``
``link.giveup``  ``process``, ``peer``, ``attempts``
``net.shed``     ``dst``, ``kind``, ``queued`` (or ``flushed`` on restore)
``net.backpressure`` ``process``, ``state``, ``pending``
===============  ============================================================

The ``mc.*`` probes are emitted by the model checker's explorer
(:mod:`repro.mc.explorer`): one ``mc.schedule`` per explored maximal
schedule (``outcome`` is ``"complete"``, ``"violation"`` or
``"truncated"``), one ``mc.prune`` per skipped subtree (``reason`` is
``"sleep"`` or ``"state"``), one ``mc.violation`` per counterexample.

The ``verify.step``/``verify.match`` probes are emitted by the
incremental verification engine
(:class:`repro.verification.engine.SpecMonitor`): one ``verify.step``
per user event the monitor checks (``sequence`` is the trace record's
sequence number, ``messages`` the registered-message count at that
point), one ``verify.match`` when an event completes a forbidden
instance.

The ``fault.*``/``crash``/``restart`` probes come from the fault
injection layer (:mod:`repro.faults`): ``fault.drop`` carries a
``reason`` of ``"random"``, ``"scripted"`` or ``"crash"``
(``fault.partition`` is its own probe), ``fault.spike`` reports the
extra latency added.  The ``retx.*`` probes come from the ARQ sublayer
(:mod:`repro.protocols.reliable`): ``retx.send`` per retransmitted
packet, ``retx.ack`` per acknowledgment processed, ``retx.dup`` per
duplicate arrival suppressed by receive-side dedup.

``timer.fire`` is emitted by the host each time a protocol timer's
action actually runs (armed timers that die in a crash never fire); the
WAL (:mod:`repro.wal`) mirrors it so a recorded run carries its timer
history alongside the fault and retransmission streams.

The ``link.*`` / ``net.shed`` / ``net.backpressure`` probes come from
the cluster resilience layer (:mod:`repro.net.resilience` plus the
:class:`~repro.net.host.NetHost` runtime): ``link.up`` /
``link.suspect`` / ``link.down`` mark each failure-detector state
transition for one peer link (``previous`` is the state it left),
``link.redial`` a successful supervised reconnect after ``attempts``
tries, ``link.giveup`` an abandoned one, ``retx.resume`` the ARQ
sublayer retransmitting its unacked window on a restored link,
``net.shed`` a frame shed from (or flushed out of) a down-link queue,
and ``net.backpressure`` a high/low watermark crossing of the host's
local pending work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

#: The stable probe-point names (see the module docstring for payloads).
PROBES = frozenset(
    {
        "sim.step",
        "net.send",
        "net.control",
        "host.invoke",
        "host.inhibit",
        "host.release",
        "host.receive",
        "host.deliver",
        "verify.check",
        "verify.step",
        "verify.match",
        "mc.schedule",
        "mc.prune",
        "mc.violation",
        "fault.drop",
        "fault.dup",
        "fault.partition",
        "fault.spike",
        "crash",
        "restart",
        "retx.send",
        "retx.ack",
        "retx.dup",
        "retx.resume",
        "timer.fire",
        "link.up",
        "link.suspect",
        "link.down",
        "link.redial",
        "link.giveup",
        "net.shed",
        "net.backpressure",
    }
)


@dataclass(frozen=True)
class ProbeEvent:
    """One emitted probe: its point, virtual time, and payload fields."""

    probe: str
    time: float
    data: Mapping[str, Any] = field(default_factory=dict)

    def field_value(self, name: str, default: Any = None) -> Any:
        """A payload field by name (``default`` when absent)."""
        return self.data.get(name, default)


Handler = Callable[[ProbeEvent], None]


class Bus:
    """Dispatches probe events to subscribers; inert while none exist.

    Call sites are expected to guard emissions with
    ``if bus is not None and bus.active:`` so that the disabled and the
    attached-but-unobserved configurations cost one or two attribute
    loads per probe site -- nothing is allocated and no handler list is
    consulted.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Handler]] = {}
        self._wildcard: List[Handler] = []
        #: ``True`` iff at least one subscriber is attached (kept as a plain
        #: attribute so hot paths can read it without a method call).
        self.active = False

    def _refresh_active(self) -> None:
        self.active = bool(self._wildcard) or any(self._handlers.values())

    def subscribe(self, probe: str, handler: Handler) -> Callable[[], None]:
        """Attach ``handler`` to one probe point; returns an unsubscriber."""
        if probe not in PROBES:
            raise ValueError(
                "unknown probe %r; expected one of %s" % (probe, sorted(PROBES))
            )
        self._handlers.setdefault(probe, []).append(handler)
        self.active = True

        def unsubscribe() -> None:
            handlers = self._handlers.get(probe, [])
            if handler in handlers:
                handlers.remove(handler)
            self._refresh_active()

        return unsubscribe

    def subscribe_all(self, handler: Handler) -> Callable[[], None]:
        """Attach ``handler`` to every probe point; returns an unsubscriber."""
        self._wildcard.append(handler)
        self.active = True

        def unsubscribe() -> None:
            if handler in self._wildcard:
                self._wildcard.remove(handler)
            self._refresh_active()

        return unsubscribe

    def emit(self, probe: str, time: float, **data: Any) -> None:
        """Deliver a probe event to its subscribers (no-op when inactive)."""
        if not self.active:
            return
        handlers = self._handlers.get(probe)
        if not handlers and not self._wildcard:
            return
        if probe not in PROBES:
            raise ValueError(
                "unknown probe %r; expected one of %s" % (probe, sorted(PROBES))
            )
        event = ProbeEvent(probe=probe, time=time, data=data)
        if handlers:
            for handler in list(handlers):
                handler(event)
        for handler in list(self._wildcard):
            handler(event)


class ProbeLog:
    """A subscriber that records every probe event, in emission order."""

    def __init__(self, bus: Bus):
        self._events: List[ProbeEvent] = []
        self._unsubscribe = bus.subscribe_all(self._events.append)

    def events(self) -> List[ProbeEvent]:
        """All recorded events, oldest first."""
        return list(self._events)

    def events_for(self, probe: str) -> List[ProbeEvent]:
        """The recorded events of one probe point."""
        return [event for event in self._events if event.probe == probe]

    def close(self) -> None:
        """Stop recording (detach from the bus)."""
        self._unsubscribe()

    def __len__(self) -> int:
        return len(self._events)
