"""Exporters: Chrome trace-event JSON (Perfetto) and JSONL probe logs.

The Chrome trace-event format (the JSON flavour Perfetto and
``chrome://tracing`` load directly) gets one track per process, one
complete-event slice per message phase (inhibit / transit / buffer), and
one flow arrow per message from its send to its receive.  Virtual time
maps to microseconds at :data:`TIME_SCALE` microseconds per virtual time
unit, so one unit of simulated latency displays as one millisecond.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.bus import ProbeLog
from repro.obs.spans import SpanTracer

#: Microseconds of trace time per unit of virtual time.
TIME_SCALE = 1000.0


def spans_to_chrome_trace(
    tracer: SpanTracer,
    n_processes: Optional[int] = None,
    time_scale: float = TIME_SCALE,
) -> Dict[str, Any]:
    """The tracer's spans and flows as a Chrome trace-event dict.

    ``n_processes`` forces a metadata row (and hence an empty track) for
    processes that happened to emit nothing.
    """
    spans = tracer.spans()
    flows = tracer.flows()
    tracks = set(span.track for span in spans)
    tracks.update(flow.src for flow in flows)
    tracks.update(flow.dst for flow in flows)
    if n_processes is not None:
        tracks.update(range(n_processes))
    events: List[Dict[str, Any]] = []
    for track in sorted(tracks):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": track,
                "args": {"name": "P%d" % track},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": track,
                "args": {"sort_index": track},
            }
        )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    )
    for span in spans:
        args: Dict[str, Any] = {
            "message": span.message_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_span_id"] = span.parent_id
        if span.incomplete:
            args["incomplete"] = True
        for key, value in span.args.items():
            if value is not None:
                args[key] = value
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": 0,
                "tid": span.track,
                "ts": span.start * time_scale,
                "dur": max(span.duration * time_scale, 1.0),
                "args": args,
            }
        )
    for flow in flows:
        common = {"cat": "message", "name": flow.message_id, "pid": 0}
        events.append(
            dict(
                common,
                ph="s",
                id=flow.flow_id,
                tid=flow.src,
                ts=flow.send_time * time_scale,
            )
        )
        events.append(
            dict(
                common,
                ph="f",
                bp="e",
                id=flow.flow_id,
                tid=flow.dst,
                ts=flow.receive_time * time_scale,
            )
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    tracer: SpanTracer,
    n_processes: Optional[int] = None,
    time_scale: float = TIME_SCALE,
) -> str:
    """Write the Chrome trace-event JSON for ``tracer`` to ``path``."""
    document = spans_to_chrome_trace(
        tracer, n_processes=n_processes, time_scale=time_scale
    )
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
    return path


def probe_log_to_jsonl(log: ProbeLog) -> str:
    """Serialize a probe log as JSON Lines text (one event per line)."""
    lines = []
    for event in log.events():
        record = {"probe": event.probe, "time": event.time}
        record.update(
            {key: _jsonable(value) for key, value in sorted(event.data.items())}
        )
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_probe_log(path: str, log: ProbeLog) -> str:
    """Write a probe log to ``path`` as JSON Lines."""
    with open(path, "w") as handle:
        handle.write(probe_log_to_jsonl(log))
    return path


def _jsonable(value: Any) -> Any:
    """Coerce probe payload values into something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)
