"""OpenMetrics / Prometheus text exposition for a metrics registry.

Renders any :class:`~repro.obs.metrics.MetricsRegistry` to the
Prometheus text format (the OpenMetrics-compatible subset: ``# HELP`` /
``# TYPE`` headers, ``metric{label="..."} value`` samples, histograms as
``_count`` / ``_sum`` plus quantile gauges).  Metric names are sanitized
to the ``[a-zA-Z_][a-zA-Z0-9_]*`` charset (dots become underscores), so
``latency.end_to_end`` exposes as ``latency_end_to_end``.

:func:`parse_openmetrics` is the strict-enough inverse used by
``repro top`` and the CI smoke check: it validates the line grammar and
returns ``{name: {labelset: value}}``.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "QUANTILES",
    "metric_name",
    "parse_openmetrics",
    "render_openmetrics",
]

_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')

#: Quantiles exposed per histogram (matching ``Histogram.snapshot``).
QUANTILES = (50, 95, 99)


def metric_name(name: str) -> str:
    """A registry metric name as a legal exposition name."""
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def _sample(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            '%s="%s"' % (key, _escape(str(labels[key]))) for key in sorted(labels)
        )
        return "%s{%s} %s" % (name, rendered, _format(value))
    return "%s %s" % (name, _format(value))


def render_openmetrics(
    registry: MetricsRegistry, extra_labels: Optional[Dict[str, str]] = None
) -> str:
    """The registry as Prometheus/OpenMetrics exposition text.

    ``extra_labels`` (e.g. ``{"process": "2"}``) are stamped onto every
    sample, which is how per-host scrapes stay distinguishable after a
    collector aggregates them.
    """
    base = dict(extra_labels or {})
    lines = []
    for name in registry.names():
        metric = registry.get(name)
        exposed = metric_name(name)
        if isinstance(metric, Counter):
            lines.append("# HELP %s %s" % (exposed, _escape(metric.help or name)))
            lines.append("# TYPE %s counter" % exposed)
            lines.append(_sample(exposed, base, metric.value))
            for label, value in sorted(metric.by_label.items()):
                lines.append(_sample(exposed, dict(base, label=label), value))
        elif isinstance(metric, Gauge):
            lines.append("# HELP %s %s" % (exposed, _escape(metric.help or name)))
            lines.append("# TYPE %s gauge" % exposed)
            lines.append(_sample(exposed, base, metric.value))
            lines.append(_sample(exposed + "_max", base, metric.max_seen))
            for label, value in sorted(metric.by_label.items()):
                lines.append(_sample(exposed, dict(base, label=label), value))
        elif isinstance(metric, Histogram):
            lines.append("# HELP %s %s" % (exposed, _escape(metric.help or name)))
            lines.append("# TYPE %s summary" % exposed)
            lines.append(_sample(exposed + "_count", base, metric.count))
            lines.append(_sample(exposed + "_sum", base, metric.total))
            for quantile in QUANTILES:
                lines.append(
                    _sample(
                        exposed,
                        dict(base, quantile="0.%02d" % quantile),
                        metric.percentile(quantile),
                    )
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back to ``{name: {labelset: value}}``.

    The labelset key is a sorted tuple of ``(label, value)`` pairs (empty
    tuple for unlabelled samples).  Raises :class:`ValueError` on any
    line that is neither a comment nor a well-formed sample -- the CI
    smoke step leans on that strictness.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line.strip())
        if match is None:
            raise ValueError("openmetrics line %d is malformed: %r" % (lineno, line))
        labels = []
        raw = match.group("labels")
        if raw:
            for part in raw.split(","):
                pair = _LABEL.match(part.strip())
                if pair is None:
                    raise ValueError(
                        "openmetrics line %d has a bad label %r" % (lineno, part)
                    )
                labels.append((pair.group(1), pair.group(2)))
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                "openmetrics line %d has a bad value: %s" % (lineno, exc)
            ) from exc
        samples.setdefault(match.group("name"), {})[
            tuple(sorted(labels))
        ] = value
    return samples
