"""Metrics registry: counters, gauges and histograms over probe events.

The registry is a flat namespace of named metrics; the
:class:`MetricsRecorder` subscribes a registry to an instrumentation bus
and maintains the protocol-cost metrics the paper's analysis cares about:
inhibition time (``x.s* -> x.s``), network transit (``x.s -> x.r*``),
delivery buffering (``x.r* -> x.r``), tag bytes, control fan-out per
channel, buffer occupancy per process, and per-channel reordering.

The recorder *subsumes* :class:`~repro.simulation.trace.SimulationStats`:
:meth:`MetricsRecorder.as_simulation_stats` reconstructs a bit-identical
stats object purely from the probe stream, so the legacy aggregate API
keeps working while richer metrics ride on the same events.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.bus import Bus, ProbeEvent
from repro.simulation.trace import SimulationStats, estimate_size


class Counter:
    """A monotonically increasing count, with an optional label breakdown."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0
        self.by_label: Dict[str, float] = {}

    def inc(self, amount: float = 1.0, label: Optional[str] = None) -> None:
        """Add ``amount`` (to the total, and to ``label``'s bucket if given)."""
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % amount)
        self.value += amount
        if label is not None:
            self.by_label[label] = self.by_label.get(label, 0.0) + amount

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of the counter."""
        data: Dict[str, Any] = {"kind": self.kind, "value": self.value}
        if self.by_label:
            data["by_label"] = dict(sorted(self.by_label.items()))
        return data


class Gauge:
    """An instantaneous value whose extremes are tracked, per label."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0
        self.max_seen = 0.0
        self.by_label: Dict[str, float] = {}
        self.max_by_label: Dict[str, float] = {}

    def set(self, value: float, label: Optional[str] = None) -> None:
        """Record the current value (for the total, or for one label)."""
        if label is None:
            self.value = value
            self.max_seen = max(self.max_seen, value)
        else:
            self.by_label[label] = value
            self.max_by_label[label] = max(self.max_by_label.get(label, value), value)

    def add(self, delta: float, label: Optional[str] = None) -> None:
        """Shift the current value by ``delta``."""
        current = self.by_label.get(label, 0.0) if label is not None else self.value
        self.set(current + delta, label=label)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of the gauge."""
        data: Dict[str, Any] = {
            "kind": self.kind,
            "value": self.value,
            "max": self.max_seen,
        }
        if self.by_label:
            data["by_label"] = dict(sorted(self.by_label.items()))
            data["max_by_label"] = dict(sorted(self.max_by_label.items()))
        return data


#: Exact observations a histogram retains before switching to log
#: buckets.  Below the limit percentiles are nearest-rank exact; above it
#: memory stays O(buckets) and percentiles carry the bucket's relative
#: error, so soak runs no longer grow linearly with delivered messages.
SAMPLE_LIMIT = 4096

#: Log-bucket resolution: buckets per power of two.  Eight sub-buckets
#: per octave bound the representative-value error to 2^(1/16)-1 (~4.4%).
BUCKETS_PER_OCTAVE = 8


class Histogram:
    """A memory-bounded distribution of observed values.

    The first :data:`SAMPLE_LIMIT` observations are kept exactly (so
    short runs report nearest-rank percentiles bit-identical to the
    pre-bounded implementation); past the limit every observation folds
    into HDR-style log buckets (:data:`BUCKETS_PER_OCTAVE` per octave)
    and percentiles are bucket midpoints clamped to the observed range.
    ``count``/``total``/``mean``/``min``/``max`` are exact always.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", sample_limit: int = SAMPLE_LIMIT):
        self.name = name
        self.help = help
        self.sample_limit = sample_limit
        self._values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: log-bucket index -> count (positive values only).
        self._buckets: Dict[int, int] = {}
        #: observations <= 0 (wall-clock subtraction can graze zero).
        self._zero = 0
        self._exact = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self._exact:
            if len(self._values) < self.sample_limit:
                self._values.append(value)
                return
            # Overflow: fold the exact head into buckets once, then
            # bucket everything from here on (the head is retained for
            # ``values()``, but percentiles become bucket-based).
            self._exact = False
            for retained in self._values:
                self._bucket_add(retained)
        self._bucket_add(value)

    def _bucket_add(self, value: float, count: int = 1) -> None:
        if value <= 0.0:
            self._zero += count
        else:
            index = math.floor(math.log(value, 2.0) * BUCKETS_PER_OCTAVE)
            self._buckets[index] = self._buckets.get(index, 0) + count

    @property
    def exact(self) -> bool:
        """Whether every observation is still individually retained."""
        return self._exact

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of observations."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0 when empty)."""
        return self._max if self._max is not None else 0.0

    def percentile(self, p: float) -> float:
        """The nearest-rank ``p``-th percentile (0 when empty).

        Exact while under the sample limit; a clamped log-bucket midpoint
        afterwards.
        """
        if not self._count:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % p)
        rank = max(1, math.ceil(p / 100.0 * self._count))
        if self._exact:
            ordered = sorted(self._values)
            return ordered[rank - 1]
        seen = self._zero
        if rank <= seen:
            return self.min
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                midpoint = 2.0 ** ((index + 0.5) / BUCKETS_PER_OCTAVE)
                return min(max(midpoint, self.min), self.max)
        return self.max

    def values(self) -> List[float]:
        """The retained observations, in recording order.

        Complete while under the sample limit; afterwards only the exact
        head is retained (use :meth:`percentile` for the tail).
        """
        return list(self._values)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if other._count == 0:
            return
        combined = self._count + other._count
        self._total += other._total
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        if self._exact and other._exact and combined <= self.sample_limit:
            self._values.extend(other._values)
            self._count = combined
            return
        if self._exact:
            self._exact = False
            for retained in self._values:
                self._bucket_add(retained)
        if other._exact:
            for value in other._values:
                self._bucket_add(value)
        else:
            self._zero += other._zero
            for index, count in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + count
        self._count = combined

    def to_wire(self) -> Dict[str, Any]:
        """A JSON-safe encoding (see :meth:`from_wire`); deterministic."""
        body: Dict[str, Any] = {
            "count": self._count,
            "total": self._total,
            "min": self.min,
            "max": self.max,
        }
        if self._exact:
            body["samples"] = list(self._values)
        else:
            body["buckets"] = [
                [index, self._buckets[index]] for index in sorted(self._buckets)
            ]
            body["zero"] = self._zero
        return body

    @classmethod
    def from_wire(
        cls, body: Dict[str, Any], name: str = "h", help: str = ""
    ) -> "Histogram":
        """Rebuild a histogram encoded by :meth:`to_wire`."""
        histogram = cls(name, help)
        if "samples" in body:
            for value in body["samples"]:
                histogram.observe(float(value))
            return histogram
        histogram._exact = False
        histogram._count = int(body.get("count", 0))
        histogram._total = float(body.get("total", 0.0))
        if histogram._count:
            histogram._min = float(body.get("min", 0.0))
            histogram._max = float(body.get("max", 0.0))
        histogram._zero = int(body.get("zero", 0))
        for index, count in body.get("buckets", []):
            histogram._buckets[int(index)] = int(count)
        return histogram

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready summary of the distribution."""
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A named, typed collection of metrics (create-or-get semantics)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, cls, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    "metric %r already registered as %s" % (name, existing.kind)
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        """The histogram named ``name``, created on first use."""
        return self._get_or_create(Histogram, name, help)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The metric named ``name``, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of every metric, keyed by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def to_json(self, indent: int = 2) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def stats_to_registry(
    stats: SimulationStats, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Export a legacy :class:`SimulationStats` into registry metrics.

    Lets post-hoc aggregates from un-instrumented runs participate in the
    same export/reporting surface as live-recorded metrics.
    """
    registry = registry or MetricsRegistry()
    registry.counter("messages.user", "user messages released").inc(
        stats.user_messages
    )
    registry.counter("net.control.messages", "control messages sent").inc(
        stats.control_messages
    )
    registry.counter("net.control.bytes", "control payload bytes").inc(
        stats.control_bytes
    )
    registry.counter("tag.bytes", "total tag bytes piggybacked").inc(
        stats.tag_bytes_total
    )
    registry.gauge("tag.bytes.max", "largest single tag").set(stats.max_tag_bytes)
    registry.counter("messages.delivered", "deliveries executed").inc(
        stats.deliveries
    )
    registry.counter("messages.delayed", "deliveries after receive time").inc(
        stats.delayed_deliveries
    )
    network = registry.histogram("latency.delivery", "send -> deliver time")
    for value in stats.delivery_latencies:
        network.observe(value)
    e2e = registry.histogram("latency.end_to_end", "invoke -> deliver time")
    for value in stats.end_to_end_latencies:
        e2e.observe(value)
    return registry


class MetricsRecorder:
    """Subscribes a registry to a bus and maintains protocol-cost metrics.

    Metrics maintained (names are part of the observability contract):

    - ``messages.invoked`` / ``messages.user`` / ``messages.delivered`` /
      ``messages.delayed`` (counters),
    - ``messages.inhibited`` -- invokes the protocol did not release
      synchronously,
    - ``latency.inhibition`` / ``latency.network`` / ``latency.buffering`` /
      ``latency.delivery`` / ``latency.end_to_end`` (histograms),
    - ``tag.bytes`` (counter) and ``tag.bytes.per_message`` (histogram) and
      ``tag.bytes.max`` (gauge),
    - ``net.control.messages`` / ``net.control.bytes`` (counters, with a
      per-channel ``pSRC->pDST`` label breakdown -- the control fan-out),
    - ``buffer.occupancy`` (gauge; received-not-yet-delivered, global and
      per ``pN`` label),
    - ``channel.reordered`` (counter, per-channel: arrivals overtaken by a
      later-sent packet on the same channel),
    - ``fault.drops`` (counter, labelled by drop reason: ``random`` /
      ``scripted`` / ``crash``), ``fault.dups``, ``fault.partition_drops``
      (per-channel labels), ``fault.spikes``, ``fault.crashes`` /
      ``fault.restarts`` (per-process labels),
    - ``retx.messages`` (counter, labelled ``user`` / ``control``) /
      ``retx.acks`` / ``retx.dups`` -- the ARQ sublayer's recovery work,
    - ``net.goodput`` (gauge: deliveries per packet the user layer paid
      for, ``delivered / (released + retransmitted)``; 1.0 on a clean
      network, sinking as recovery work grows),
    - ``link.transitions`` (counter, labelled by the new detector state
      ``up`` / ``suspect`` / ``down``), ``link.redials`` / ``link.giveups``
      (counters, per-process labels) -- the failure detector and the
      reconnect supervisor at work,
    - ``net.shed.frames`` (counter, labelled ``user`` / ``control``:
      frames dropped from a full send queue while a link was down),
    - ``net.backpressure.transitions`` (counter, labelled ``high`` /
      ``low``) and ``net.backpressure.pending`` (gauge, per-process: the
      pending depth at the last watermark crossing).
    """

    def __init__(self, bus: Bus, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self._invoke_time: Dict[str, float] = {}
        self._release_time: Dict[str, float] = {}
        self._receive_time: Dict[str, float] = {}
        self._tag_bytes: Dict[str, int] = {}
        self._occupancy: Dict[int, int] = {}
        self._channel_send_high: Dict[Tuple[int, int], float] = {}
        self._unsubscribers = [
            bus.subscribe("host.invoke", self._on_invoke),
            bus.subscribe("host.inhibit", self._on_inhibit),
            bus.subscribe("host.release", self._on_release),
            bus.subscribe("host.receive", self._on_receive),
            bus.subscribe("host.deliver", self._on_deliver),
            bus.subscribe("net.control", self._on_control),
            bus.subscribe("fault.drop", self._on_fault_drop),
            bus.subscribe("fault.dup", self._on_fault_dup),
            bus.subscribe("fault.partition", self._on_fault_partition),
            bus.subscribe("fault.spike", self._on_fault_spike),
            bus.subscribe("crash", self._on_crash),
            bus.subscribe("restart", self._on_restart),
            bus.subscribe("retx.send", self._on_retx_send),
            bus.subscribe("retx.ack", self._on_retx_ack),
            bus.subscribe("retx.dup", self._on_retx_dup),
            bus.subscribe("link.up", self._on_link_transition),
            bus.subscribe("link.suspect", self._on_link_transition),
            bus.subscribe("link.down", self._on_link_transition),
            bus.subscribe("link.redial", self._on_link_redial),
            bus.subscribe("link.giveup", self._on_link_giveup),
            bus.subscribe("net.shed", self._on_net_shed),
            bus.subscribe("net.backpressure", self._on_backpressure),
        ]

    def close(self) -> None:
        """Detach from the bus (the registry keeps its values)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers = []

    # Probe handlers -------------------------------------------------------

    def _on_invoke(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        self._invoke_time[message_id] = event.time
        self.registry.counter("messages.invoked", "send requests (x.s*)").inc()

    def _on_inhibit(self, event: ProbeEvent) -> None:
        self.registry.counter(
            "messages.inhibited", "invokes not released synchronously"
        ).inc()

    def _on_release(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        tag_bytes = event.data["tag_bytes"]
        self._release_time[message_id] = event.time
        self._tag_bytes[message_id] = tag_bytes
        registry = self.registry
        registry.counter("messages.user", "user messages released").inc()
        registry.counter("tag.bytes", "total tag bytes piggybacked").inc(tag_bytes)
        registry.histogram("tag.bytes.per_message", "tag size distribution").observe(
            tag_bytes
        )
        registry.gauge("tag.bytes.max", "largest single tag").set(
            max(registry.gauge("tag.bytes.max").max_seen, tag_bytes)
        )
        invoked_at = self._invoke_time.get(message_id)
        if invoked_at is not None:
            registry.histogram(
                "latency.inhibition", "invoke -> send (send inhibition)"
            ).observe(event.time - invoked_at)

    def _on_receive(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        process = event.data["process"]
        sender = event.data["sender"]
        self._receive_time[message_id] = event.time
        registry = self.registry
        released_at = self._release_time.get(message_id)
        if released_at is not None:
            registry.histogram(
                "latency.network", "send -> receive (transit)"
            ).observe(event.time - released_at)
            channel = (sender, process)
            high = self._channel_send_high.get(channel)
            if high is not None and released_at < high:
                registry.counter(
                    "channel.reordered", "arrivals overtaken on their channel"
                ).inc(label="p%d->p%d" % channel)
            if high is None or released_at > high:
                self._channel_send_high[channel] = released_at
        self._occupancy[process] = self._occupancy.get(process, 0) + 1
        occupancy = registry.gauge(
            "buffer.occupancy", "received but not yet delivered"
        )
        occupancy.add(1)
        occupancy.set(self._occupancy[process], label="p%d" % process)

    def _on_deliver(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        process = event.data["process"]
        registry = self.registry
        registry.counter("messages.delivered", "deliveries executed").inc()
        if event.data.get("delayed"):
            registry.counter(
                "messages.delayed", "deliveries after receive time"
            ).inc()
        received_at = self._receive_time.get(message_id)
        if received_at is not None:
            registry.histogram(
                "latency.buffering", "receive -> deliver (delivery buffering)"
            ).observe(event.time - received_at)
        released_at = self._release_time.get(message_id)
        if released_at is not None:
            registry.histogram(
                "latency.delivery", "send -> deliver time"
            ).observe(event.time - released_at)
        invoked_at = self._invoke_time.get(message_id)
        if invoked_at is not None:
            registry.histogram(
                "latency.end_to_end", "invoke -> deliver time"
            ).observe(event.time - invoked_at)
        self._occupancy[process] = self._occupancy.get(process, 0) - 1
        occupancy = registry.gauge(
            "buffer.occupancy", "received but not yet delivered"
        )
        occupancy.add(-1)
        occupancy.set(self._occupancy[process], label="p%d" % process)
        self._update_goodput()

    def _on_control(self, event: ProbeEvent) -> None:
        src = event.data["src"]
        dst = event.data["dst"]
        label = "p%d->p%d" % (src, dst)
        payload_bytes = estimate_size(event.data.get("payload"))
        self.registry.counter("net.control.messages", "control messages sent").inc(
            label=label
        )
        self.registry.counter("net.control.bytes", "control payload bytes").inc(
            payload_bytes, label=label
        )

    # Fault and recovery probes --------------------------------------------

    def _on_fault_drop(self, event: ProbeEvent) -> None:
        self.registry.counter(
            "fault.drops", "packets destroyed by the fault plan"
        ).inc(label=event.data.get("reason") or "random")

    def _on_fault_dup(self, event: ProbeEvent) -> None:
        self.registry.counter("fault.dups", "packets duplicated in flight").inc()

    def _on_fault_partition(self, event: ProbeEvent) -> None:
        self.registry.counter(
            "fault.partition_drops", "packets severed by a partition"
        ).inc(label="p%d->p%d" % (event.data["src"], event.data["dst"]))

    def _on_fault_spike(self, event: ProbeEvent) -> None:
        self.registry.counter("fault.spikes", "packets hit by a delay spike").inc()

    def _on_crash(self, event: ProbeEvent) -> None:
        self.registry.counter("fault.crashes", "process crash events").inc(
            label="p%d" % event.data["process"]
        )

    def _on_restart(self, event: ProbeEvent) -> None:
        self.registry.counter("fault.restarts", "process restart events").inc(
            label="p%d" % event.data["process"]
        )

    def _on_retx_send(self, event: ProbeEvent) -> None:
        self.registry.counter("retx.messages", "retransmissions sent").inc(
            label=event.data.get("kind") or "user"
        )
        self._update_goodput()

    def _on_retx_ack(self, event: ProbeEvent) -> None:
        self.registry.counter("retx.acks", "cumulative acks observed").inc()

    def _on_link_transition(self, event: ProbeEvent) -> None:
        state = event.probe.rsplit(".", 1)[1]  # link.up -> up
        self.registry.counter(
            "link.transitions", "failure-detector link state changes"
        ).inc(label=state)

    def _on_link_redial(self, event: ProbeEvent) -> None:
        self.registry.counter(
            "link.redials", "supervised reconnects that restored a link"
        ).inc(label="p%d" % event.data["process"])

    def _on_link_giveup(self, event: ProbeEvent) -> None:
        self.registry.counter(
            "link.giveups", "reconnect supervisors past their deadline"
        ).inc(label="p%d" % event.data["process"])

    def _on_net_shed(self, event: ProbeEvent) -> None:
        # Two shapes share the probe: the transport's shed (has "kind")
        # and the host's flush-on-restore notice (has "flushed").
        kind = event.data.get("kind")
        if kind is not None:
            self.registry.counter(
                "net.shed.frames", "frames dropped from a full send queue"
            ).inc(label=kind)

    def _on_backpressure(self, event: ProbeEvent) -> None:
        state = event.data["state"]
        self.registry.counter(
            "net.backpressure.transitions", "send-watermark crossings"
        ).inc(label=state)
        self.registry.gauge(
            "net.backpressure.pending", "pending depth at the last crossing"
        ).set(event.data.get("pending", 0), label="p%d" % event.data["process"])

    def _on_retx_dup(self, event: ProbeEvent) -> None:
        self.registry.counter(
            "retx.dups", "duplicate arrivals absorbed by dedup"
        ).inc()

    def _update_goodput(self) -> None:
        registry = self.registry
        attempts = (
            registry.counter("messages.user").value
            + registry.counter("retx.messages").value
        )
        if attempts:
            registry.gauge(
                "net.goodput", "deliveries per user-layer packet sent"
            ).set(registry.counter("messages.delivered").value / attempts)

    # Legacy surface -------------------------------------------------------

    def as_simulation_stats(self) -> SimulationStats:
        """Reconstruct the legacy stats object from the probe stream.

        For an instrumented run this is bit-identical to the
        :class:`SimulationStats` the host populated directly (the same
        subtractions over the same virtual times), which is how the
        registry subsumes the old API without breaking it.
        """
        registry = self.registry
        delivery = registry.histogram("latency.delivery")
        e2e = registry.histogram("latency.end_to_end")
        tags = registry.histogram("tag.bytes.per_message")
        return SimulationStats(
            user_messages=int(registry.counter("messages.user").value),
            control_messages=int(registry.counter("net.control.messages").value),
            control_bytes=int(registry.counter("net.control.bytes").value),
            tag_bytes_total=int(registry.counter("tag.bytes").value),
            max_tag_bytes=int(tags.max),
            deliveries=int(registry.counter("messages.delivered").value),
            delayed_deliveries=int(registry.counter("messages.delayed").value),
            delivery_latencies=delivery.values(),
            end_to_end_latencies=e2e.values(),
        )
