"""Liveness watchdog: which messages are stuck, where, and why.

The paper's liveness obligation is that every invoked message is
eventually delivered.  When a run drains with undelivered messages, the
watchdog names the blocking layer from the message's lifecycle state:

- invoked but never released  -> send inhibited at the sender;
- released but never received -> in flight: lost to a network fault
  (when a ``fault.drop``/``fault.partition`` probe or a
  :meth:`Watchdog.note_drop` call said so) or genuinely still travelling;
- received but never delivered -> buffered at the receiver.

Under fault injection (:mod:`repro.faults`) the in-flight diagnosis
distinguishes *network loss* from *protocol blocking*: a dropped packet
with retransmissions under way reads "lost in network (awaiting
retransmit)", a dropped packet nobody retransmits is flagged as such,
and only an undropped message falls through to the protocol's own
account.  When the run's protocol instances are available their
:meth:`~repro.protocols.base.Protocol.blocking_reason` hook refines the
generic reason with protocol state ("waiting for seq 3 from P0", ...).
The watchdog can follow a live bus or replay a finished
:class:`~repro.simulation.trace.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.events import DELIVER, INVOKE, RECEIVE, SEND
from repro.obs.bus import Bus, ProbeEvent
from repro.simulation.trace import Trace


@dataclass(frozen=True)
class StuckMessage:
    """One undelivered message and the diagnosis of what blocks it."""

    message_id: str
    phase: str  # "inhibited" | "in-flight" | "buffered"
    process: int  # the process holding the message
    since: float  # virtual time the message entered the blocking phase
    reason: str

    def describe(self) -> str:
        """A one-line human-readable diagnosis."""
        return "%s %s at P%d since t=%.3f: %s" % (
            self.message_id,
            self.phase,
            self.process,
            self.since,
            self.reason,
        )


class Watchdog:
    """Tracks per-message lifecycle state and reports stuck messages."""

    def __init__(self, bus: Optional[Bus] = None):
        self._invoked: Dict[str, float] = {}
        self._sender: Dict[str, int] = {}
        self._receiver: Dict[str, int] = {}
        self._released: Dict[str, float] = {}
        self._received: Dict[str, float] = {}
        #: Where the receive happened -- lets a *receiver-side* watchdog
        #: (one net host's bus, which never sees the peer's invoke)
        #: still report messages buffered locally.
        self._receive_process: Dict[str, int] = {}
        self._delivered: Dict[str, float] = {}
        self._dropped: Dict[str, float] = {}
        self._retransmits: Dict[str, int] = {}
        self._unsubscribers = []
        if bus is not None:
            self._unsubscribers = [
                bus.subscribe("host.invoke", self._on_invoke),
                bus.subscribe("host.release", self._on_release),
                bus.subscribe("host.receive", self._on_receive),
                bus.subscribe("host.deliver", self._on_deliver),
                bus.subscribe("fault.drop", self._on_drop),
                bus.subscribe("fault.partition", self._on_drop),
                bus.subscribe("retx.send", self._on_retransmit),
            ]

    @classmethod
    def from_trace(cls, trace: Trace) -> "Watchdog":
        """Replay a finished trace into a watchdog (no bus required)."""
        watchdog = cls()
        messages = {message.id: message for message in trace.messages()}
        for record in trace.records():
            message = messages[record.event.message_id]
            kind = record.event.kind
            if kind is INVOKE:
                watchdog._note_invoke(
                    record.time, message.id, message.sender, message.receiver
                )
            elif kind is SEND:
                watchdog._released[message.id] = record.time
            elif kind is RECEIVE:
                watchdog._received[message.id] = record.time
            elif kind is DELIVER:
                watchdog._delivered[message.id] = record.time
        return watchdog

    # State transitions ----------------------------------------------------

    def _note_invoke(
        self, time: float, message_id: str, sender: int, receiver: int
    ) -> None:
        self._invoked[message_id] = time
        self._sender[message_id] = sender
        self._receiver[message_id] = receiver

    def _on_invoke(self, event: ProbeEvent) -> None:
        self._note_invoke(
            event.time,
            event.data["message_id"],
            event.data["process"],
            event.data["receiver"],
        )

    def _on_release(self, event: ProbeEvent) -> None:
        self._released[event.data["message_id"]] = event.time

    def _on_receive(self, event: ProbeEvent) -> None:
        self._received[event.data["message_id"]] = event.time
        process = event.data.get("process")
        if process is not None:
            self._receive_process[event.data["message_id"]] = process

    def _on_deliver(self, event: ProbeEvent) -> None:
        self._delivered[event.data["message_id"]] = event.time

    def _on_drop(self, event: ProbeEvent) -> None:
        message_id = event.data.get("message_id")
        if message_id is not None:
            self.note_drop(message_id, time=event.time)

    def _on_retransmit(self, event: ProbeEvent) -> None:
        message_id = event.data.get("message_id")
        if message_id is not None:
            self.note_retransmit(message_id)

    # Fault attribution (probe-fed, or fed directly from a
    # FaultyTransport's ``dropped_user`` list when no bus was attached).

    def note_drop(self, message_id: str, time: float = 0.0) -> None:
        """Record that a copy of ``message_id`` was lost in the network."""
        self._dropped[message_id] = time

    def note_retransmit(self, message_id: str) -> None:
        """Record one retransmission attempt for ``message_id``."""
        self._retransmits[message_id] = self._retransmits.get(message_id, 0) + 1

    def close(self) -> None:
        """Detach from the bus (accumulated state remains queryable)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers = []

    # Reporting ------------------------------------------------------------

    def stuck(
        self, protocols: Optional[Sequence[object]] = None
    ) -> List[StuckMessage]:
        """Every invoked-but-undelivered message with its diagnosis.

        ``protocols`` is the per-process protocol list of the run, used to
        refine reasons via :meth:`Protocol.blocking_reason`.
        """
        reports = []
        for message_id in sorted(self._invoked):
            if message_id in self._delivered:
                continue
            sender = self._sender[message_id]
            receiver = self._receiver[message_id]
            if message_id not in self._released:
                phase, process = "inhibited", sender
                since = self._invoked[message_id]
                reason = "protocol never released the send"
            elif message_id not in self._received:
                phase, process = "in-flight", sender
                since = self._released[message_id]
                lost = message_id in self._dropped
                attempts = self._retransmits.get(message_id, 0)
                if lost and attempts:
                    reason = (
                        "lost in network (awaiting retransmit, "
                        "%d attempt(s) so far)" % attempts
                    )
                elif lost:
                    reason = (
                        "lost in network at t=%.3f, never retransmitted"
                        % self._dropped[message_id]
                    )
                else:
                    reason = "released but never arrived at P%d" % receiver
            else:
                phase, process = "buffered", receiver
                since = self._received[message_id]
                reason = "protocol never delivered after receive"
            detail = self._protocol_reason(protocols, process, message_id)
            if detail:
                # Network loss outranks the protocol's own account -- the
                # sender's ARQ state is appended, not substituted, so the
                # report still separates "the network ate it" from "the
                # protocol is blocking".
                if phase == "in-flight" and message_id in self._dropped:
                    reason = "%s -- sender: %s" % (reason, detail)
                else:
                    reason = detail
            reports.append(
                StuckMessage(
                    message_id=message_id,
                    phase=phase,
                    process=process,
                    since=since,
                    reason=reason,
                )
            )
        # Receiver-side view: a message this watchdog saw arrive but whose
        # invoke happened on a bus it is not subscribed to (each net host
        # has its own).  In the simulator one watchdog sees every process,
        # so this loop adds nothing there.
        for message_id in sorted(self._received):
            if message_id in self._invoked or message_id in self._delivered:
                continue
            process = self._receive_process.get(message_id, -1)
            reason = (
                self._protocol_reason(protocols, process, message_id)
                or "protocol never delivered after receive"
            )
            reports.append(
                StuckMessage(
                    message_id=message_id,
                    phase="buffered",
                    process=process,
                    since=self._received[message_id],
                    reason=reason,
                )
            )
        return reports

    @staticmethod
    def _protocol_reason(
        protocols: Optional[Sequence[object]], process: int, message_id: str
    ) -> Optional[str]:
        if protocols is None or not 0 <= process < len(protocols):
            return None
        hook = getattr(protocols[process], "blocking_reason", None)
        if hook is None:
            return None
        return hook(message_id)

    def render(self, protocols: Optional[Sequence[object]] = None) -> str:
        """A human-readable stuck-message report (empty string when live)."""
        reports = self.stuck(protocols=protocols)
        if not reports:
            return ""
        lines = ["%d message(s) stuck:" % len(reports)]
        lines.extend("  " + report.describe() for report in reports)
        return "\n".join(lines)
