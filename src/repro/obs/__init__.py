"""Observability: instrumentation bus, metrics, causal spans, profiling.

The layer the ROADMAP's production ambitions need: typed probe points
emitted from the simulator, network, protocol hosts and the verification
harness (:mod:`repro.obs.bus`); a metrics registry of the paper's cost
dimensions that subsumes ``SimulationStats`` (:mod:`repro.obs.metrics`);
a span-based causal tracer with Chrome trace-event export so a run opens
in Perfetto (:mod:`repro.obs.spans`, :mod:`repro.obs.export`); a
liveness watchdog naming what blocks each stuck message
(:mod:`repro.obs.watchdog`); and a per-phase protocol profiler behind
``repro profile`` (:mod:`repro.obs.profile`).  Everything is opt-in:
with no bus attached the simulation path is unchanged and its schedule
bit-identical.
"""

from repro.obs.bus import PROBES, Bus, ProbeEvent, ProbeLog
from repro.obs.export import (
    TIME_SCALE,
    probe_log_to_jsonl,
    spans_to_chrome_trace,
    write_chrome_trace,
    write_probe_log,
)
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.forensics import build_forensics, render_forensics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRecorder,
    MetricsRegistry,
    stats_to_registry,
)
from repro.obs.openmetrics import parse_openmetrics, render_openmetrics
from repro.obs.profile import (
    DEFAULT_PROFILE_PROTOCOLS,
    ProtocolProfile,
    catalog_protocols,
    profile_protocol,
    profile_protocols,
    render_profiles,
)
from repro.obs.spans import PHASES, Flow, Span, SpanTracer
from repro.obs.watchdog import StuckMessage, Watchdog

__all__ = [
    "PROBES",
    "Bus",
    "ProbeEvent",
    "ProbeLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsRecorder",
    "stats_to_registry",
    "PHASES",
    "Span",
    "Flow",
    "SpanTracer",
    "TIME_SCALE",
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "probe_log_to_jsonl",
    "write_probe_log",
    "StuckMessage",
    "Watchdog",
    "FlightRecord",
    "FlightRecorder",
    "build_forensics",
    "render_forensics",
    "parse_openmetrics",
    "render_openmetrics",
    "ProtocolProfile",
    "DEFAULT_PROFILE_PROTOCOLS",
    "catalog_protocols",
    "profile_protocol",
    "profile_protocols",
    "render_profiles",
]
