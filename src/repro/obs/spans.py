"""Span-based causal tracing of message lifecycles.

Each message's ``invoke -> send -> receive -> deliver`` lifecycle becomes
three spans with causal parent links:

- ``inhibit`` (invoke to send, on the sender's track) -- where
  send-inhibitory protocols pay;
- ``transit`` (send to receive, on the sender's track, parented by the
  inhibit span) -- the network's share;
- ``buffer`` (receive to deliver, on the receiver's track, parented by
  the transit span) -- where delivery-buffering protocols pay.

The tracer also records one *flow* per message (send at the sender to
receive at the receiver), which the Chrome exporter turns into the
causal arrows Perfetto draws between tracks.  Phases a run never
completed are closed at :meth:`SpanTracer.finish` time and marked
``incomplete``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.bus import Bus, ProbeEvent

#: Lifecycle phases, in causal order.
PHASES = ("inhibit", "transit", "buffer")


@dataclass
class Span:
    """One closed interval of a message's lifecycle on one track."""

    span_id: int
    name: str
    category: str  # one of PHASES
    track: int  # process index whose timeline carries the span
    start: float
    end: float
    parent_id: Optional[int] = None
    message_id: str = ""
    incomplete: bool = False
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """The span's extent in virtual time."""
        return self.end - self.start


@dataclass(frozen=True)
class Flow:
    """A causal arrow: the send at the sender to the receive at the receiver."""

    flow_id: int
    message_id: str
    src: int
    dst: int
    send_time: float
    receive_time: float


class SpanTracer:
    """Builds the causal span tree of a run from host probe events."""

    def __init__(self, bus: Bus):
        self._spans: List[Span] = []
        self._flows: List[Flow] = []
        self._next_id = 1
        # Per-message lifecycle state.
        self._invoke: Dict[str, ProbeEvent] = {}
        self._release: Dict[str, ProbeEvent] = {}
        self._receive: Dict[str, ProbeEvent] = {}
        self._span_of: Dict[str, Dict[str, int]] = {}  # message -> phase -> id
        self._finished = False
        self._unsubscribers = [
            bus.subscribe("host.invoke", self._on_invoke),
            bus.subscribe("host.release", self._on_release),
            bus.subscribe("host.receive", self._on_receive),
            bus.subscribe("host.deliver", self._on_deliver),
        ]

    def _new_span(
        self,
        name: str,
        category: str,
        track: int,
        start: float,
        end: float,
        parent_id: Optional[int],
        message_id: str,
        incomplete: bool = False,
        **args: Any,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            track=track,
            start=start,
            end=end,
            parent_id=parent_id,
            message_id=message_id,
            incomplete=incomplete,
            args=args,
        )
        self._next_id += 1
        self._spans.append(span)
        self._span_of.setdefault(message_id, {})[category] = span.span_id
        return span

    # Probe handlers -------------------------------------------------------

    def _on_invoke(self, event: ProbeEvent) -> None:
        self._invoke[event.data["message_id"]] = event

    def _on_release(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        self._release[message_id] = event
        invoke = self._invoke.get(message_id)
        start = invoke.time if invoke is not None else event.time
        self._new_span(
            name="%s inhibit" % message_id,
            category="inhibit",
            track=event.data["process"],
            start=start,
            end=event.time,
            parent_id=None,
            message_id=message_id,
            tag_bytes=event.data.get("tag_bytes"),
        )

    def _on_receive(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        self._receive[message_id] = event
        release = self._release.get(message_id)
        sender = event.data["sender"]
        start = release.time if release is not None else event.time
        parent = self._span_of.get(message_id, {}).get("inhibit")
        self._new_span(
            name="%s transit" % message_id,
            category="transit",
            track=sender,
            start=start,
            end=event.time,
            parent_id=parent,
            message_id=message_id,
        )
        self._flows.append(
            Flow(
                flow_id=len(self._flows) + 1,
                message_id=message_id,
                src=sender,
                dst=event.data["process"],
                send_time=start,
                receive_time=event.time,
            )
        )

    def _on_deliver(self, event: ProbeEvent) -> None:
        message_id = event.data["message_id"]
        receive = self._receive.get(message_id)
        start = receive.time if receive is not None else event.time
        parent = self._span_of.get(message_id, {}).get("transit")
        self._new_span(
            name="%s buffer" % message_id,
            category="buffer",
            track=event.data["process"],
            start=start,
            end=event.time,
            parent_id=parent,
            message_id=message_id,
            delayed=event.data.get("delayed"),
        )

    # Lifecycle ------------------------------------------------------------

    def finish(self, now: float) -> None:
        """Close the spans of unfinished lifecycles at time ``now``.

        A message invoked but never released gets an ``incomplete``
        inhibit span; one received but never delivered an ``incomplete``
        buffer span.  Idempotent.
        """
        if self._finished:
            return
        self._finished = True
        for message_id, invoke in sorted(self._invoke.items()):
            if message_id not in self._release:
                self._new_span(
                    name="%s inhibit" % message_id,
                    category="inhibit",
                    track=invoke.data["process"],
                    start=invoke.time,
                    end=max(now, invoke.time),
                    parent_id=None,
                    message_id=message_id,
                    incomplete=True,
                )
        for message_id, receive in sorted(self._receive.items()):
            spans = self._span_of.get(message_id, {})
            if "buffer" not in spans:
                self._new_span(
                    name="%s buffer" % message_id,
                    category="buffer",
                    track=receive.data["process"],
                    start=receive.time,
                    end=max(now, receive.time),
                    parent_id=spans.get("transit"),
                    message_id=message_id,
                    incomplete=True,
                )

    def close(self) -> None:
        """Detach from the bus (recorded spans remain queryable)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers = []

    # Queries --------------------------------------------------------------

    def spans(self) -> List[Span]:
        """All spans, ordered by (start time, creation order)."""
        return sorted(self._spans, key=lambda span: (span.start, span.span_id))

    def spans_of(self, message_id: str) -> Dict[str, Span]:
        """The spans of one message, keyed by phase."""
        ids = self._span_of.get(message_id, {})
        by_id = {span.span_id: span for span in self._spans}
        return {phase: by_id[span_id] for phase, span_id in ids.items()}

    def flows(self) -> List[Flow]:
        """All send->receive flows, in receive order."""
        return list(self._flows)
