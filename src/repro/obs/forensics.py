"""Violation forensics: turn a latched violation into an explanation.

When a live run's :class:`~repro.verification.engine.SpecMonitor` latches
a :class:`~repro.verification.engine.monitor.FirstViolation`, the raw
report is terse: a predicate name and a variable assignment.  This module
reconstructs the *story* an operator needs:

- the **causal path** -- every user event of the assignment's messages,
  vector-timestamped by the monitor's
  :class:`~repro.verification.engine.causality.OnlineCausality`, sorted
  into a causal order with the process-order and send->deliver edges
  made explicit;
- the **out-of-order pairs** -- for each pair of assigned messages, the
  observed send order vs the observed delivery order, naming exactly
  which inversion fired the predicate (e.g. FIFO: sends ``x ▷ y`` but
  deliveries ``y ▷ x``);
- the **wall-clock timeline** -- when flight-recorder dumps (TRACE
  frames, :mod:`repro.obs.flight`) are available, each assigned
  message's invoke/send/receive/deliver with real timestamps per host;
- the surrounding **flight window** -- every recorded probe event within
  :data:`WINDOW_SECONDS` of the violation across all hosts, so faults,
  retransmissions and inhibits near the violation are in the report.

:func:`build_forensics` produces a JSON-safe dict (what ``repro load``
writes as the forensics artifact); :func:`render_forensics` renders the
same dict as text for the console.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.events import Event, EventKind
from repro.obs.flight import FlightRecorder

__all__ = [
    "WINDOW_LIMIT",
    "WINDOW_SECONDS",
    "build_forensics",
    "render_forensics",
]

#: Wall-clock half-width of the flight window kept around a violation.
WINDOW_SECONDS = 0.5

#: Ceiling on flight-window records embedded in one report (per run, not
#: per host) -- forensics artifacts must stay readable, not exhaustive.
WINDOW_LIMIT = 200

_LIFECYCLE_ORDER = ("invoke", "send", "receive", "deliver")

_EVENT_TO_FLIGHT = {
    EventKind.INVOKE: "invoke",
    EventKind.SEND: "send",
    EventKind.RECEIVE: "receive",
    EventKind.DELIVER: "deliver",
}


def _event_label(event: Event) -> str:
    return repr(event)  # the paper's "m1.s" / "m1.r" notation


def _vc_wire(vc: Dict[int, int]) -> Dict[str, int]:
    return {str(process): count for process, count in sorted(vc.items())}


def _causal_path(
    causality: Any, message_ids: Sequence[str]
) -> "tuple[List[Dict[str, Any]], List[Dict[str, Any]]]":
    """(nodes, edges) of the assignment's user events in causal order."""
    nodes = []
    for message_id in message_ids:
        for event in (Event.send(message_id), Event.deliver(message_id)):
            info = causality.info(event)
            if info is None:
                continue
            location, own, clock = info
            nodes.append(
                {
                    "event": _event_label(event),
                    "message_id": message_id,
                    "kind": "send" if event.kind is EventKind.SEND else "deliver",
                    "process": location,
                    "vc": _vc_wire(clock),
                    "_sort": (sum(clock.values()), location, own),
                }
            )
    nodes.sort(key=lambda node: node.pop("_sort"))
    edges = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if a["message_id"] == b["message_id"] and (
                a["kind"], b["kind"]
            ) == ("send", "deliver"):
                edges.append(
                    {
                        "from": a["event"],
                        "to": b["event"],
                        "why": "send -> deliver of %s" % a["message_id"],
                    }
                )
            elif a["process"] == b["process"] and causality.before(
                Event(a["message_id"], _KIND[a["kind"]]),
                Event(b["message_id"], _KIND[b["kind"]]),
            ):
                edges.append(
                    {
                        "from": a["event"],
                        "to": b["event"],
                        "why": "process order at P%d" % a["process"],
                    }
                )
    return nodes, edges


_KIND = {"send": EventKind.SEND, "deliver": EventKind.DELIVER}


def _out_of_order_pairs(
    causality: Any, message_ids: Sequence[str]
) -> List[Dict[str, Any]]:
    """Send-order/delivery-order inversions among the assigned messages."""
    pairs = []
    ordered = sorted(set(message_ids))
    for i, x in enumerate(ordered):
        for y in ordered[i + 1 :]:
            for first, second in ((x, y), (y, x)):
                sends = causality.before(Event.send(first), Event.send(second))
                delivers_inverted = causality.before(
                    Event.deliver(second), Event.deliver(first)
                )
                if sends and delivers_inverted:
                    pairs.append(
                        {
                            "sent_first": first,
                            "sent_second": second,
                            "delivered_first": second,
                            "delivered_second": first,
                            "describe": (
                                "sends %s.s ▷ %s.s but deliveries %s.r ▷ %s.r"
                                % (first, second, second, first)
                            ),
                        }
                    )
    return pairs


def _flight_records(dumps: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """``(process, record)`` pairs decoded from TRACE bodies (lenient)."""
    decoded = []
    for dump in dumps or ():
        flight = (dump or {}).get("flight")
        if not flight:
            continue
        process = flight.get("process", dump.get("process", -1))
        try:
            records = FlightRecorder.records_from_wire(flight)
        except ValueError:
            continue  # a corrupt dump costs its window, not the report
        decoded.extend((process, record) for record in records)
    return decoded


def _timeline(
    dumps: Sequence[Dict[str, Any]], message_ids: Sequence[str]
) -> List[Dict[str, Any]]:
    """Per-message wall-clock lifecycle rows, gathered across hosts."""
    wanted = set(message_ids)
    rows: List[Dict[str, Any]] = []
    for process, record in _flight_records(dumps):
        if record.kind in _LIFECYCLE_ORDER and record.message_id in wanted:
            rows.append(
                {
                    "message_id": record.message_id,
                    "kind": record.kind,
                    "process": process,
                    "wall": record.wall,
                    "t": record.time,
                    "vc": _vc_wire(record.vc),
                }
            )
    rows.sort(key=lambda row: (row["wall"], row["message_id"], row["kind"]))
    return rows


def _window(
    dumps: Sequence[Dict[str, Any]], around_wall: Optional[float]
) -> List[Dict[str, Any]]:
    """All flight records within the window, merged across hosts."""
    if around_wall is None:
        return []
    rows = []
    for process, record in _flight_records(dumps):
        if abs(record.wall - around_wall) <= WINDOW_SECONDS:
            entry = record.to_wire()
            entry["process"] = process
            rows.append(entry)
    rows.sort(key=lambda row: (row["wall"], row["process"], row["seq"]))
    if len(rows) > WINDOW_LIMIT:
        keep = WINDOW_LIMIT // 2
        rows = rows[:keep] + rows[-keep:]
    return rows


def build_forensics(
    observer: Any, trace_dumps: Optional[Sequence[Dict[str, Any]]] = None
) -> Optional[Dict[str, Any]]:
    """A JSON-safe forensics report for an observer's latched violation.

    ``observer`` is a :class:`~repro.net.cluster.LiveObserver` (or
    anything with ``monitor``/``trace``/``spec``); ``trace_dumps`` are
    TRACE frame bodies pulled from the hosts.  Returns ``None`` when the
    monitor latched nothing (an oracle-only rejection has no violating
    event to anchor on, so it gets no forensics beyond the report line).
    """
    monitor = getattr(observer, "monitor", None)
    violation = getattr(monitor, "violation", None)
    if violation is None:
        return None
    causality = monitor.causality
    assignment = dict(violation.assignment)
    message_ids = sorted(set(assignment.values()))
    trace = getattr(observer, "trace", None)
    messages = {}
    for message_id in message_ids:
        message = trace.message(message_id) if trace is not None else None
        if message is not None:
            messages[message_id] = {
                "sender": message.sender,
                "receiver": message.receiver,
                "color": message.color,
            }
    nodes, edges = _causal_path(causality, message_ids)
    dumps = list(trace_dumps or ())
    timeline = _timeline(dumps, message_ids)
    violation_wall = None
    for row in timeline:
        if (
            row["message_id"] == violation.event.message_id
            and row["kind"] == _EVENT_TO_FLIGHT[violation.event.kind]
        ):
            violation_wall = row["wall"]
    if violation_wall is None and timeline:
        violation_wall = timeline[-1]["wall"]
    spec = getattr(observer, "spec", None)
    return {
        "spec": getattr(spec, "name", None),
        "predicate": violation.predicate_name,
        "violation": {
            "time": violation.time,
            "event": _event_label(violation.event),
            "message_id": violation.event.message_id,
            "assignment": assignment,
        },
        "messages": messages,
        "causal_path": nodes,
        "causal_edges": edges,
        "out_of_order": _out_of_order_pairs(causality, message_ids),
        "timeline": timeline,
        "flight_window": _window(dumps, violation_wall),
        "hosts_dumped": sorted(
            dump.get("process", -1) for dump in dumps if dump
        ),
    }


def render_forensics(report: Dict[str, Any]) -> str:
    """The forensics dict as a human-readable multi-section text."""
    violation = report.get("violation", {})
    lines = [
        "VIOLATION FORENSICS",
        "  spec        %s" % (report.get("spec") or "?"),
        "  predicate   %s" % (report.get("predicate") or "?"),
        "  fired by    %s at t=%.3f"
        % (violation.get("event", "?"), violation.get("time", 0.0)),
        "  assignment  "
        + ", ".join(
            "%s=%s" % (var, mid)
            for var, mid in sorted(violation.get("assignment", {}).items())
        ),
    ]
    messages = report.get("messages", {})
    if messages:
        lines.append("  messages:")
        for message_id in sorted(messages):
            info = messages[message_id]
            lines.append(
                "    %-8s P%d -> P%d%s"
                % (
                    message_id,
                    info.get("sender", -1),
                    info.get("receiver", -1),
                    " (%s)" % info["color"] if info.get("color") else "",
                )
            )
    pairs = report.get("out_of_order", [])
    if pairs:
        lines.append("  out-of-order pairs:")
        for pair in pairs:
            lines.append("    " + pair["describe"])
    path = report.get("causal_path", [])
    if path:
        lines.append("  causal path (vector timestamps):")
        for node in path:
            lines.append(
                "    %-8s at P%d  vc=%s"
                % (node["event"], node["process"], node["vc"])
            )
        for edge in report.get("causal_edges", []):
            lines.append(
                "    %s -> %s  (%s)" % (edge["from"], edge["to"], edge["why"])
            )
    timeline = report.get("timeline", [])
    if timeline:
        lines.append("  wall-clock timeline:")
        base = timeline[0]["wall"]
        for row in timeline:
            lines.append(
                "    +%8.3fms  %-7s %-8s at P%d"
                % (
                    (row["wall"] - base) * 1000.0,
                    row["kind"],
                    row["message_id"],
                    row["process"],
                )
            )
    window = report.get("flight_window", [])
    if window:
        lines.append(
            "  flight window: %d record(s) within %.1fs of the violation"
            % (len(window), WINDOW_SECONDS)
        )
    return "\n".join(lines)
