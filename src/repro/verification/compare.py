"""Side-by-side protocol comparison (the E6-style study as library code).

``compare_protocols`` runs every protocol over a shared workload grid and
returns one :class:`ProtocolRow` per protocol: specification outcome,
control/tag overheads, latency, and run-shape metrics (concurrency lost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.runs.metrics import run_metrics
from repro.simulation.network import LatencyModel, UniformLatency
from repro.simulation.runner import run_simulation
from repro.simulation.workloads import Workload
from repro.verification.checker import check_simulation


@dataclass(frozen=True)
class ProtocolRow:
    """Aggregates for one protocol across the grid."""

    name: str
    runs: int
    spec_ok: bool
    violations: int
    control_messages_per_run: float
    tag_bytes_per_message: float
    delayed_deliveries_per_run: float
    mean_send_latency: float
    mean_end_to_end_latency: float
    mean_concurrency_ratio: float

    def as_tuple(self) -> Tuple:
        """The row formatted for table rendering (matches HEADERS)."""
        return (
            self.name,
            "yes" if self.spec_ok else "NO",
            self.violations,
            "%.0f" % self.control_messages_per_run,
            "%.0f" % self.tag_bytes_per_message,
            "%.1f" % self.delayed_deliveries_per_run,
            "%.1f" % self.mean_send_latency,
            "%.1f" % self.mean_end_to_end_latency,
            "%.2f" % self.mean_concurrency_ratio,
        )

    HEADERS = (
        "protocol",
        "spec ok",
        "violations",
        "ctrl/run",
        "tagB/msg",
        "delayed/run",
        "s->r",
        "invoke->r",
        "concurrency",
    )


def compare_protocols(
    entries: Sequence[Tuple[str, Callable[[int, int], object],
                            Union[Specification, ForbiddenPredicate]]],
    workloads: Sequence[Workload],
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    with_metrics: bool = True,
) -> List[ProtocolRow]:
    """Run each ``(name, factory, spec)`` over all ``workloads``."""
    latency = latency or UniformLatency(low=1.0, high=40.0)
    rows = []
    for name, factory, spec in entries:
        runs = violations = control = delayed = 0
        tag_bytes = user_messages = 0
        send_latency = e2e_latency = concurrency = 0.0
        ok = True
        for workload in workloads:
            result = run_simulation(factory, workload, seed=seed, latency=latency)
            outcome = check_simulation(result, spec)
            runs += 1
            ok = ok and outcome.ok
            violations += len(outcome.violations)
            control += result.stats.control_messages
            delayed += result.stats.delayed_deliveries
            tag_bytes += result.stats.tag_bytes_total
            user_messages += result.stats.user_messages
            send_latency += result.stats.mean_delivery_latency
            e2e_latency += result.stats.mean_end_to_end_latency
            if with_metrics:
                concurrency += run_metrics(result.user_run).concurrency_ratio
        rows.append(
            ProtocolRow(
                name=name,
                runs=runs,
                spec_ok=ok,
                violations=violations,
                control_messages_per_run=control / runs,
                tag_bytes_per_message=(
                    tag_bytes / user_messages if user_messages else 0.0
                ),
                delayed_deliveries_per_run=delayed / runs,
                mean_send_latency=send_latency / runs,
                mean_end_to_end_latency=e2e_latency / runs,
                mean_concurrency_ratio=(
                    concurrency / runs if with_metrics else 0.0
                ),
            )
        )
    return rows
