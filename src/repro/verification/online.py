"""Online (incremental) verification: locate the first violation.

Post-hoc checking says *whether* a run violates a specification; for
debugging a protocol you want to know *when* -- which delivery committed
the violation.  ``first_violation`` feeds the trace through an
incremental :class:`~repro.verification.engine.SpecMonitor`, which
evaluates only the forbidden instances that mention each appended event,
and returns the earliest event whose execution completed a forbidden
instance.

:class:`FirstViolation` itself lives in
:mod:`repro.verification.engine.monitor`; it is re-exported here for the
historical import path.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.simulation.trace import Trace
from repro.verification.engine import FirstViolation, monitor_trace

__all__ = ["FirstViolation", "first_violation"]


def first_violation(
    trace: Trace, spec: Union[Specification, ForbiddenPredicate]
) -> Optional[FirstViolation]:
    """Check the trace; return the earliest completing event, or ``None``.

    A forbidden instance becomes true at the execution of its causally
    last event, which (conjuncts being ▷-atoms over the projection) is a
    send or delivery, so only user events are inspected.
    """
    return monitor_trace(trace, spec)
