"""Online (incremental) verification: locate the first violation.

Post-hoc checking says *whether* a run violates a specification; for
debugging a protocol you want to know *when* -- which delivery committed
the violation.  ``first_violation`` replays a trace event by event,
re-evaluating only the assignments that involve the newest event, and
returns the earliest event whose execution completed a forbidden
instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.events import DELIVER, SEND, Event, Message
from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.evaluation import satisfying_assignments
from repro.predicates.spec import Specification
from repro.runs.user_run import UserRun
from repro.simulation.trace import Trace


@dataclass(frozen=True)
class FirstViolation:
    """The earliest trace event completing a forbidden instance."""

    time: float
    event: Event
    predicate_name: str
    assignment: Dict[str, str]

    def __repr__(self) -> str:
        binding = ", ".join(
            "%s=%s" % (k, v) for k, v in sorted(self.assignment.items())
        )
        return "FirstViolation(t=%.3f, %r fires %s with %s)" % (
            self.time,
            self.event,
            self.predicate_name,
            binding,
        )


def _new_instance(
    run: UserRun, predicate: ForbiddenPredicate, new_event: Event
) -> Optional[Dict[str, Message]]:
    """A satisfying assignment whose conjuncts *use* the newest event.

    The new event is maximal when added, so instance truths among older
    events are unchanged: every newly-true instance mentions it.
    """
    for assignment in satisfying_assignments(run, predicate):
        used = {
            Event(assignment[term.variable].id, term.kind)
            for conjunct in predicate.conjuncts
            for term in (conjunct.left, conjunct.right)
        }
        if new_event in used:
            return assignment
    return None


def first_violation(
    trace: Trace, spec: Union[Specification, ForbiddenPredicate]
) -> Optional[FirstViolation]:
    """Replay the trace; return the earliest completing event, or ``None``.

    A forbidden instance becomes true at the execution of its causally
    last event, which (conjuncts being ▷-atoms over the projection) is a
    send or delivery, so only user events are inspected.
    """
    specification = (
        spec
        if isinstance(spec, Specification)
        else Specification(name=spec.name or "anonymous", predicates=(spec,))
    )
    run = UserRun()
    registered = set()
    messages = {m.id: m for m in trace.messages()}
    for record in trace.records():
        event = record.event
        if event.kind not in (SEND, DELIVER):
            continue
        message = messages[event.message_id]
        if message.id not in registered:
            run.add_message(message, with_events=False)
            registered.add(message.id)
        # Process order: the new event follows everything already at its
        # process.
        prior = [
            e
            for e in run.events_of_process(record.process)
            if run.has_event(e)
        ]
        run.add_event(event)
        for earlier in prior:
            if earlier != event:
                run.order(earlier, event)
        members = specification.members_for(run)
        for predicate in members:
            assignment = _new_instance(run, predicate, event)
            if assignment is not None:
                return FirstViolation(
                    time=record.time,
                    event=event,
                    predicate_name=predicate.name or "anonymous",
                    assignment={
                        var: message.id for var, message in assignment.items()
                    },
                )
    return None
