"""Run verification: does an execution satisfy a specification?

``check_run`` evaluates every applicable forbidden predicate over a
user-view run and reports each witness assignment.  ``check_simulation``
additionally folds in liveness (every invoked message delivered) -- the
two obligations the paper places on an implementing protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.evaluation import satisfying_assignments
from repro.predicates.spec import Specification
from repro.runs.user_run import UserRun
from repro.simulation.runner import SimulationResult


@dataclass(frozen=True)
class Violation:
    """One forbidden instance found in a run."""

    predicate_name: str
    assignment: Dict[str, str]  # variable -> message id

    def __repr__(self) -> str:
        binding = ", ".join(
            "%s=%s" % (var, mid) for var, mid in sorted(self.assignment.items())
        )
        return "Violation(%s: %s)" % (self.predicate_name, binding)


@dataclass
class CheckResult:
    """Outcome of checking one run against one specification."""

    specification_name: str
    safe: bool
    live: bool
    violations: List[Violation] = field(default_factory=list)
    undelivered: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.safe and self.live

    def summary(self) -> str:
        """One line: OK/FAIL, violations, liveness."""
        status = "OK" if self.ok else "FAIL"
        parts = ["%s vs %s" % (status, self.specification_name)]
        if not self.safe:
            parts.append("%d violation(s), e.g. %r" % (
                len(self.violations), self.violations[0]))
        if not self.live:
            parts.append("undelivered: %s" % ", ".join(self.undelivered))
        return "; ".join(parts)


def _as_specification(
    spec: Union[Specification, ForbiddenPredicate]
) -> Specification:
    if isinstance(spec, ForbiddenPredicate):
        return Specification(name=spec.name or "anonymous", predicates=(spec,))
    return spec


def check_run(
    run: UserRun,
    spec: Union[Specification, ForbiddenPredicate],
    max_violations: int = 10,
) -> CheckResult:
    """Safety check only (the run is taken as complete).

    Safety is decided by the verification engine's batch path
    (:func:`repro.verification.engine.spec_admits` -- exact, using the
    specification's oracle when it has one); witness assignments are then
    enumerated with the reference semantics of
    :func:`~repro.predicates.evaluation.satisfying_assignments`, so for
    family specifications with an arity cap an unsafe run may carry fewer
    listed witnesses than it has forbidden instances.
    """
    from repro.verification.engine import spec_admits

    specification = _as_specification(spec)
    safe = spec_admits(run, specification)
    violations: List[Violation] = []
    if not safe:
        for predicate in specification.members_for(run):
            for assignment in satisfying_assignments(run, predicate):
                violations.append(
                    Violation(
                        predicate_name=predicate.name or "anonymous",
                        assignment={
                            var: message.id for var, message in assignment.items()
                        },
                    )
                )
                if len(violations) >= max_violations:
                    break
            if len(violations) >= max_violations:
                break
    return CheckResult(
        specification_name=specification.name,
        safe=safe,
        live=True,
        violations=violations,
    )


def check_simulation(
    result: SimulationResult,
    spec: Union[Specification, ForbiddenPredicate],
    max_violations: int = 10,
) -> CheckResult:
    """Safety and liveness for a recorded simulation."""
    outcome = check_run(result.user_run, spec, max_violations=max_violations)
    outcome.live = result.delivered_all
    outcome.undelivered = list(result.undelivered)
    return outcome
