"""Per-ordering-key spec monitoring: one exact monitor per lane.

The exact incremental monitor
(:class:`~repro.verification.engine.SpecMonitor`) re-searches a growing
trace and is quadratic per channel -- ~35ms per message by the time a
channel holds a couple of thousand messages, which is three orders of
magnitude too slow to run live inside the sharded runtime.  But the
sharded runtime's unit of ordering is the **ordering key**
(:attr:`repro.events.Message.effective_key`), and a spec scoped to one
key only ever quantifies over that key's messages.  So the monitor can
be *sharded the same way the traffic is*: one independent trace and one
independent :class:`SpecMonitor` per key, each fed only its key's
events.

That keeps two properties the runtime depends on:

exactness per key
    within a key the monitor is the full decision machinery -- any
    forbidden-predicate instance over the key's messages is found,
    first-violation semantics included;

independence across keys
    no index, causality structure, or member set is shared between
    keys, so one hot key cannot slow (or falsely implicate) another --
    the verification-side mirror of the lanes' no-head-of-line-blocking
    guarantee.

What is *lost* is exactly what the classification predicts: predicate
instances that mix messages of different keys (cross-key causality,
cross-key crowns -- the liftings that classify GENERAL) are invisible
here, and belong to the coordinator's end-of-run merged oracle
(:func:`repro.net.shard.coordinator.cross_key_oracle`).
``tests/test_shard.py`` cross-validates the runtime's O(1) lane
checkers against this class on traces with injected violations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.events import Event, Message
from repro.predicates import ForbiddenPredicate, Specification
from repro.simulation.trace import Trace
from repro.verification.engine import FirstViolation, SpecMonitor

__all__ = ["KeyedSpecMonitor"]


class KeyedSpecMonitor:
    """Route events into per-key exact monitors (see module docstring).

    Feed it with :meth:`observe_send` / :meth:`observe_deliver` (or the
    lower-level :meth:`observe`); each event lands in the private trace
    of its message's effective key and advances that key's monitor
    alone.  A violation latches per key; :attr:`violation` surfaces the
    earliest across keys.
    """

    def __init__(
        self,
        spec: Union[Specification, ForbiddenPredicate],
        n_processes: int,
    ) -> None:
        self.spec = spec
        self.n_processes = n_processes
        self._traces: Dict[str, Trace] = {}
        self._monitors: Dict[str, SpecMonitor] = {}
        #: First violation latched per key (insertion order = discovery
        #: order, so the first value is the run's first violation).
        self.violations: Dict[str, FirstViolation] = {}

    def lane(self, key: str) -> Tuple[Trace, SpecMonitor]:
        """The (trace, monitor) pair of ``key``, created on first use."""
        trace = self._traces.get(key)
        if trace is None:
            trace = Trace(self.n_processes)
            self._traces[key] = trace
            self._monitors[key] = SpecMonitor(self.spec)
        return trace, self._monitors[key]

    # -- feeding --------------------------------------------------------------

    def observe(
        self, time: float, process: int, event: Event, message: Message
    ) -> Optional[FirstViolation]:
        """Record one event against its message's key lane and check it."""
        key = message.effective_key
        trace, monitor = self.lane(key)
        if trace.message(message.id) is None:
            trace.register_message(message)
        trace.record(time, process, event)
        violation = monitor.advance(trace)
        if violation is not None and key not in self.violations:
            self.violations[key] = violation
        return violation

    def observe_send(
        self, time: float, message: Message
    ) -> Optional[FirstViolation]:
        """Record a send (with its implied invoke, keeping the per-key
        trace a well-formed system run)."""
        key = message.effective_key
        trace, _ = self.lane(key)
        if trace.message(message.id) is None:
            trace.register_message(message)
        trace.record(time, message.sender, Event.invoke(message.id))
        return self.observe(time, message.sender, Event.send(message.id), message)

    def observe_deliver(
        self, time: float, message: Message
    ) -> Optional[FirstViolation]:
        """Record a delivery (with its implied receive)."""
        key = message.effective_key
        trace, _ = self.lane(key)
        if trace.message(message.id) is None:
            trace.register_message(message)
        trace.record(time, message.receiver, Event.receive(message.id))
        return self.observe(
            time, message.receiver, Event.deliver(message.id), message
        )

    # -- results --------------------------------------------------------------

    @property
    def violation(self) -> Optional[FirstViolation]:
        """The first violation found across all keys, if any."""
        for found in self.violations.values():
            return found
        return None

    def violation_for(self, key: str) -> Optional[FirstViolation]:
        """The latched first violation of ``key``'s lane, if any."""
        return self.violations.get(key)

    def keys(self) -> List[str]:
        """Keys with at least one observed event, in first-seen order."""
        return list(self._traces)

    def events_checked(self) -> int:
        """Total user events checked across every key's monitor."""
        return sum(
            monitor.stats.events_checked
            for monitor in self._monitors.values()
        )

    def __repr__(self) -> str:
        return "KeyedSpecMonitor(keys=%d, violations=%d)" % (
            len(self._traces),
            len(self.violations),
        )
