"""Checking recorded runs against specifications."""

from repro.verification.checker import (
    CheckResult,
    Violation,
    check_run,
    check_simulation,
)
from repro.verification.harness import (
    ConformanceReport,
    assert_implements,
    check_conformance,
)
from repro.verification.compare import ProtocolRow, compare_protocols
from repro.verification.keyed import KeyedSpecMonitor

__all__ = [
    "KeyedSpecMonitor",
    "CheckResult",
    "Violation",
    "check_run",
    "check_simulation",
    "ConformanceReport",
    "check_conformance",
    "assert_implements",
    "ProtocolRow",
    "compare_protocols",
]
