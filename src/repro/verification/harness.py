"""Conformance harness: does a protocol implement a specification?

The paper defines implementation as safety (every produced run is in the
specification) plus liveness (everything requested is delivered).  The
harness sweeps a protocol over workload/seed/latency grids and reports
both obligations, along with the costs that betray the protocol's class
(control messages, tag bytes).

>>> from repro.verification.harness import assert_implements
>>> assert_implements(my_factory, CAUSAL_ORDERING)   # raises on failure
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs depends on us)
    from repro.obs.bus import Bus

from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.simulation.network import (
    AlternatingLatency,
    LatencyModel,
    UniformLatency,
)
from repro.simulation.runner import run_simulation
from repro.simulation.workloads import (
    Workload,
    broadcast_storm,
    client_server,
    random_traffic,
)
from repro.verification.checker import CheckResult, check_simulation


def default_workloads(seed: int) -> List[Workload]:
    """The standard stress grid: random, bursty and structured traffic."""
    return [
        random_traffic(4, 30, seed=seed),
        random_traffic(3, 30, seed=seed, color_every=6),
        broadcast_storm(4, rounds=5, seed=seed),
        client_server(3, 3, seed=seed),
    ]


def default_latencies() -> List[LatencyModel]:
    return [
        UniformLatency(low=1.0, high=40.0),
        AlternatingLatency(fast=1.0, slow=50.0),
    ]


@dataclass
class ConformanceReport:
    """Aggregate of a conformance sweep."""

    specification_name: str
    runs: int = 0
    safe_runs: int = 0
    live_runs: int = 0
    control_messages: int = 0
    tag_bytes_total: float = 0.0
    user_messages: int = 0
    failures: List[CheckResult] = field(default_factory=list)

    @property
    def conforms(self) -> bool:
        return self.runs > 0 and self.safe_runs == self.live_runs == self.runs

    @property
    def uses_control_messages(self) -> bool:
        return self.control_messages > 0

    @property
    def mean_tag_bytes(self) -> float:
        if not self.user_messages:
            return 0.0
        return self.tag_bytes_total / self.user_messages

    def summary(self) -> str:
        """A short human-readable report block."""
        lines = [
            "spec:      %s" % self.specification_name,
            "runs:      %d (safe %d, live %d)"
            % (self.runs, self.safe_runs, self.live_runs),
            "overhead:  %d control messages, %.1f tag bytes/message"
            % (self.control_messages, self.mean_tag_bytes),
            "verdict:   %s" % ("CONFORMS" if self.conforms else "FAILS"),
        ]
        for failure in self.failures[:3]:
            lines.append("  failure: %s" % failure.summary())
        return "\n".join(lines)


def check_conformance(
    protocol_factory: Callable[[int, int], object],
    spec: Union[Specification, ForbiddenPredicate],
    seeds: Sequence[int] = range(5),
    workloads: Optional[Callable[[int], List[Workload]]] = None,
    latencies: Optional[Sequence[LatencyModel]] = None,
    max_failures: int = 10,
    bus: "Optional[Bus]" = None,
) -> ConformanceReport:
    """Sweep the protocol and tally safety/liveness against ``spec``.

    An optional instrumentation ``bus`` is threaded into every simulation
    and receives one ``verify.check`` probe per checked run.
    """
    specification = (
        spec
        if isinstance(spec, Specification)
        else Specification(name=spec.name or "anonymous", predicates=(spec,))
    )
    make_workloads = workloads or default_workloads
    latency_models = list(latencies or default_latencies())
    report = ConformanceReport(specification_name=specification.name)
    for seed in seeds:
        for workload in make_workloads(seed):
            for latency in latency_models:
                result = run_simulation(
                    protocol_factory, workload, seed=seed, latency=latency, bus=bus
                )
                outcome = check_simulation(result, specification)
                if bus is not None and bus.active:
                    bus.emit(
                        "verify.check",
                        0.0,
                        spec=specification.name,
                        protocol=result.protocol_name,
                        workload=workload.name,
                        safe=outcome.safe,
                        live=outcome.live,
                        violations=len(outcome.violations),
                    )
                report.runs += 1
                report.safe_runs += outcome.safe
                report.live_runs += outcome.live
                report.control_messages += result.stats.control_messages
                report.tag_bytes_total += result.stats.tag_bytes_total
                report.user_messages += result.stats.user_messages
                if not outcome.ok and len(report.failures) < max_failures:
                    report.failures.append(outcome)
    return report


def assert_implements(
    protocol_factory: Callable[[int, int], object],
    spec: Union[Specification, ForbiddenPredicate],
    **kwargs,
) -> ConformanceReport:
    """Raise ``AssertionError`` (with the report) unless the sweep passes."""
    report = check_conformance(protocol_factory, spec, **kwargs)
    if not report.conforms:
        raise AssertionError("protocol does not implement spec:\n" + report.summary())
    return report
