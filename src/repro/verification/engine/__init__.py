"""The incremental verification engine.

One evaluation core behind every consumer of forbidden predicates:

- :func:`compile_predicate` turns a
  :class:`~repro.predicates.ast.ForbiddenPredicate` into a
  :class:`CompiledPredicate` -- selectivity-ordered variable plans with
  per-variable candidate indexes (see
  :mod:`repro.verification.engine.plan`);
- :class:`SpecMonitor` checks an append-only trace incrementally,
  anchoring the search at each new event, with ``push()``/``pop()``
  snapshots for DFS exploration (see
  :mod:`repro.verification.engine.monitor`);
- the batch helpers below run the same compiled plans over a finished
  :class:`~repro.runs.user_run.UserRun`; the historical APIs
  (``find_assignment``, ``run_admitted``, ``Specification.admits``,
  ``first_violation``) are thin wrappers over them.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.runs.user_run import UserRun
from repro.verification.engine.causality import OnlineCausality
from repro.verification.engine.indexes import MessageIndex
from repro.verification.engine.monitor import (
    FirstViolation,
    MonitorStats,
    SpecMonitor,
)
from repro.verification.engine.plan import (
    Assignment,
    CompiledPredicate,
    compile_predicate,
)

__all__ = [
    "CompiledPredicate",
    "FirstViolation",
    "MessageIndex",
    "MonitorStats",
    "OnlineCausality",
    "SpecMonitor",
    "batch_find_assignment",
    "batch_run_admitted",
    "compile_predicate",
    "index_for_run",
    "monitor_trace",
    "spec_admits",
]


def index_for_run(run: UserRun) -> MessageIndex:
    """A message index over a finished run (id-sorted, like
    ``run.messages()``, so batch search order is deterministic)."""
    index = MessageIndex()
    for message in run.messages():
        index.add(message)
    return index


def batch_find_assignment(
    run: UserRun,
    predicate: ForbiddenPredicate,
    index: Optional[MessageIndex] = None,
) -> Optional[Assignment]:
    """The first satisfying assignment of ``predicate`` in ``run``, or
    ``None`` -- the engine-backed equivalent of
    :func:`repro.predicates.evaluation.find_assignment`.

    Pass a prebuilt ``index`` (:func:`index_for_run`) when checking many
    predicates against one run.
    """
    compiled = compile_predicate(predicate)
    if compiled.never_satisfiable:
        return None
    if index is None:
        index = index_for_run(run)
    return compiled.find(index, run.has_event, run.before)


def batch_run_admitted(
    run: UserRun,
    predicate: ForbiddenPredicate,
    index: Optional[MessageIndex] = None,
) -> bool:
    """``True`` iff ``run ∈ X_B`` (no forbidden instance exists)."""
    return batch_find_assignment(run, predicate, index=index) is None


def spec_admits(
    run: UserRun, spec: Union[Specification, ForbiddenPredicate]
) -> bool:
    """``True`` iff ``run`` belongs to the specification's run set.

    Uses the specification's oracle when it has one (exact and faster
    than any search); otherwise every applicable member is checked over
    one shared index.
    """
    if isinstance(spec, ForbiddenPredicate):
        return batch_run_admitted(run, spec)
    if spec.oracle is not None:
        return spec.oracle(run)
    index = index_for_run(run)
    return all(
        batch_run_admitted(run, member, index=index)
        for member in spec.members_for(run)
    )


def monitor_trace(
    trace,
    spec: Union[Specification, ForbiddenPredicate],
    bus: Optional[object] = None,
) -> Optional[FirstViolation]:
    """Check a whole trace with a fresh monitor; the engine-backed
    equivalent of :func:`repro.verification.online.first_violation`."""
    monitor = SpecMonitor(spec, bus=bus)
    return monitor.advance(trace)
