"""The incremental specification monitor.

A :class:`SpecMonitor` consumes a trace's records once each, maintains
the online causality state and the message indexes, and on every send or
delivery searches only the forbidden instances *using* that event (the
anchored plans of :mod:`repro.verification.engine.plan`).  A new event is
maximal when appended, so instance truths among older events never
change: every newly-true forbidden instance mentions the new event, and
the anchored ``O(n^{m-1})`` search is complete.  The first completing
event is latched and reported exactly as the batch replay of
``first_violation`` reports it.

``push()``/``pop()`` snapshot the whole match state in O(1)/O(undone):
the model checker's DFS carries one monitor along the search tree,
advancing over each child's trace suffix and rewinding on backtrack,
instead of re-checking the full trace prefix at every node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.events import DELIVER, SEND, Event
from repro.predicates.ast import ForbiddenPredicate
from repro.predicates.spec import Specification
from repro.verification.engine.causality import OnlineCausality
from repro.verification.engine.indexes import MessageIndex
from repro.verification.engine.plan import CompiledPredicate, compile_predicate


@dataclass(frozen=True)
class FirstViolation:
    """The earliest trace event completing a forbidden instance."""

    time: float
    event: Event
    predicate_name: str
    assignment: Dict[str, str]

    def __repr__(self) -> str:
        binding = ", ".join(
            "%s=%s" % (k, v) for k, v in sorted(self.assignment.items())
        )
        return "FirstViolation(t=%.3f, %r fires %s with %s)" % (
            self.time,
            self.event,
            self.predicate_name,
            binding,
        )


@dataclass
class MonitorStats:
    """Work counters of one monitor (monotone; never rewound by ``pop``)."""

    events_consumed: int = 0
    events_checked: int = 0
    searches: int = 0
    violations: int = 0


#: A ``push()`` snapshot: (consumed, causality mark, index mark, violation).
MonitorFrame = Tuple[int, int, int, Optional[FirstViolation]]


class SpecMonitor:
    """Stateful first-violation detection over an append-only trace."""

    def __init__(
        self,
        spec: Union[Specification, ForbiddenPredicate],
        bus: Optional[object] = None,
    ):
        self.spec = (
            spec
            if isinstance(spec, Specification)
            else Specification(name=spec.name or "anonymous", predicates=(spec,))
        )
        self.bus = bus
        self.stats = MonitorStats()
        self._index = MessageIndex()
        self._causality = OnlineCausality()
        self._consumed = 0
        self._violation: Optional[FirstViolation] = None
        # Compiled member predicates per registered-message count.  The
        # member set is a pure function of the count (mirroring
        # ``Specification.members_for``), so entries stay valid across
        # ``pop()`` with no invalidation.
        self._members: Dict[int, List[CompiledPredicate]] = {}

    @property
    def violation(self) -> Optional[FirstViolation]:
        """The latched first violation, if one has been found."""
        return self._violation

    @property
    def consumed(self) -> int:
        """How many trace records have been consumed."""
        return self._consumed

    @property
    def causality(self) -> OnlineCausality:
        """The monitor's causal order over consumed events (read-only
        use: ``before``/``info`` queries for violation forensics)."""
        return self._causality

    # -- the incremental step ----------------------------------------------

    def advance(self, trace) -> Optional[FirstViolation]:
        """Consume the records appended since the last call; return the
        first violation (newly found or already latched), or ``None``.

        ``trace`` must extend what was previously consumed record for
        record -- the natural situation for a live simulation, and for the
        model checker's deterministic replays, where a child schedule's
        trace is bit-identical to its parent's on the shared prefix.
        """
        if self._violation is not None:
            return self._violation
        bus = self.bus
        for record in trace.records_since(self._consumed):
            self._consumed += 1
            self.stats.events_consumed += 1
            event = record.event
            if event.kind is not SEND and event.kind is not DELIVER:
                continue
            message = trace.message(event.message_id)
            if message is None:
                raise ValueError(
                    "trace record %r references message id %r which is not "
                    "registered in the trace" % (record, event.message_id)
                )
            if message.id not in self._index:
                self._index.add(message)
            self._causality.observe(event, message)
            self.stats.events_checked += 1
            if bus is not None and bus.active:
                bus.emit(
                    "verify.step",
                    record.time,
                    event=repr(event),
                    sequence=record.sequence,
                    messages=len(self._index),
                )
            violation = self._check(event, message, record.time)
            if violation is not None:
                self._violation = violation
                self.stats.violations += 1
                if bus is not None and bus.active:
                    bus.emit(
                        "verify.match",
                        record.time,
                        event=repr(event),
                        predicate=violation.predicate_name,
                        assignment=dict(violation.assignment),
                    )
                return violation
        return None

    def _check(self, event: Event, message, time: float) -> Optional[FirstViolation]:
        has_event = self._causality.has
        before = self._causality.before
        for compiled in self._current_members():
            self.stats.searches += 1
            assignment = compiled.find_anchored(
                message, event.kind, self._index, has_event, before
            )
            if assignment is not None:
                return FirstViolation(
                    time=time,
                    event=event,
                    predicate_name=compiled.name,
                    assignment={
                        var: bound.id for var, bound in assignment.items()
                    },
                )
        return None

    def _current_members(self) -> List[CompiledPredicate]:
        """The compiled member predicates for the current message count
        (the same set ``Specification.members_for`` instantiates)."""
        count = len(self._index)
        members = self._members.get(count)
        if members is None:
            spec = self.spec
            raw = [p for p in spec.predicates if p.arity <= count]
            family_arity = count
            if spec.family_arity_cap is not None:
                family_arity = min(family_arity, spec.family_arity_cap)
            for family in spec.families:
                raw.extend(family.instances(family_arity))
            members = [compile_predicate(p) for p in raw]
            self._members[count] = members
        return members

    # -- DFS snapshots -------------------------------------------------------

    def push(self) -> MonitorFrame:
        """Snapshot the match state (O(1)); pair with :meth:`pop`."""
        return (
            self._consumed,
            self._causality.mark(),
            self._index.mark(),
            self._violation,
        )

    def pop(self, frame: MonitorFrame) -> None:
        """Rewind to a snapshot taken by :meth:`push` (LIFO order)."""
        consumed, causality_mark, index_mark, violation = frame
        self._consumed = consumed
        self._causality.rewind(causality_mark)
        self._index.rewind(index_mark)
        self._violation = violation

    def __repr__(self) -> str:
        return "SpecMonitor(spec=%s, consumed=%d, violation=%r)" % (
            self.spec.name,
            self._consumed,
            self._violation,
        )
