"""Online causality: vector-timestamp ``before`` queries with rewind.

The monitor's replay path observes user events in execution order; each
new event is maximal (it is ordered after every earlier event at its
process and, for a delivery, after its own send).  Under that append-only
discipline the happened-before relation is exactly captured by vector
timestamps: ``a ▷ b`` iff ``VC(b)[loc(a)] ≥ own(a)``, an O(1) query with
no transitive-closure maintenance at all.  ``mark``/``rewind`` undo
observations in LIFO order so the model checker's DFS can share one
causality state across the whole search tree.

An event's *location* is the process it executes at: the sender for
``x.s``, the receiver for ``x.r`` -- the same attribution
:meth:`repro.runs.user_run.UserRun.events_of_process` uses, so the order
built here matches the batch replay order event for event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events import DELIVER, SEND, Event, Message


class OnlineCausality:
    """Happened-before over an event stream, one observation at a time.

    Per event the structure stores ``(location, own, clock)`` where
    ``own`` is the event's position in its location's chain and ``clock``
    its vector timestamp.  Per location it keeps the running clock: the
    join of every event observed there, which is always the clock of the
    *last* event observed there because each new event dominates its
    location's past.
    """

    __slots__ = ("_info", "_current", "_log")

    def __init__(self) -> None:
        # event -> (location, own counter, vector clock)
        self._info: Dict[Event, Tuple[int, int, Dict[int, int]]] = {}
        # location -> running clock (joined over all events located there)
        self._current: Dict[int, Dict[int, int]] = {}
        # undo log: (event, location, previous running clock of location)
        self._log: List[Tuple[Event, int, Optional[Dict[int, int]]]] = []

    def __len__(self) -> int:
        return len(self._info)

    def has(self, event: Event) -> bool:
        """Whether ``event`` has been observed."""
        return event in self._info

    def observe(self, event: Event, message: Message) -> None:
        """Record the execution of one user event (send or delivery).

        The event is ordered after everything previously observed at its
        location and, for a delivery, after the message's send.  A send
        observed *after* its own delivery cannot be represented
        append-only (the edge would run below an existing event), so it
        is rejected -- no recorded execution produces that order.
        """
        if event in self._info:
            raise ValueError("event %r observed twice" % (event,))
        if event.kind is SEND:
            location = message.sender
            if Event.deliver(message.id) in self._info:
                raise ValueError(
                    "send %r observed after its delivery; the online "
                    "causality path needs sends first" % (event,)
                )
        elif event.kind is DELIVER:
            location = message.receiver
        else:
            raise ValueError(
                "causality tracks user events (send/deliver), got %r" % (event,)
            )
        previous = self._current.get(location)
        clock = dict(previous) if previous is not None else {}
        if event.kind is DELIVER:
            send_info = self._info.get(Event.send(message.id))
            if send_info is not None:
                for index, count in send_info[2].items():
                    if clock.get(index, 0) < count:
                        clock[index] = count
        own = clock.get(location, 0) + 1
        clock[location] = own
        self._info[event] = (location, own, clock)
        self._current[location] = clock
        self._log.append((event, location, previous))

    def info(self, event: Event) -> Optional[Tuple[int, int, Dict[int, int]]]:
        """``(location, own_component, vector_clock)`` for an observed
        event, or ``None`` -- the clock dict is shared, do not mutate."""
        return self._info.get(event)

    def before(self, a: Event, b: Event) -> bool:
        """``True`` iff ``a ▷ b`` in the observed order (O(1))."""
        if a == b:
            return False
        info_a = self._info.get(a)
        info_b = self._info.get(b)
        if info_a is None or info_b is None:
            return False
        location, own, _ = info_a
        return info_b[2].get(location, 0) >= own

    # Snapshots ------------------------------------------------------------

    def mark(self) -> int:
        """A snapshot token: the number of observations so far."""
        return len(self._log)

    def rewind(self, token: int) -> None:
        """Forget every observation made after ``mark`` returned ``token``."""
        while len(self._log) > token:
            event, location, previous = self._log.pop()
            del self._info[event]
            if previous is None:
                del self._current[location]
            else:
                self._current[location] = previous

    def __repr__(self) -> str:
        return "OnlineCausality(events=%d, locations=%d)" % (
            len(self._info),
            len(self._current),
        )
