"""Attribute indexes over the messages a monitor has seen.

The compiled evaluation plans narrow each variable's candidate messages
through these indexes instead of scanning the whole message set: guards
like ``color(y) = red`` or ``sender(x) = sender(y)`` become dictionary
lookups keyed on the guard attribute.  The index is append-only with
:meth:`mark`/:meth:`rewind` snapshots so the model checker's DFS can wind
the match state back when it pops a schedule prefix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events import Message

#: Index families a plan may consult (message attribute name -> bucket key).
SENDER = "sender"
RECEIVER = "receiver"
COLOR = "color"
GROUP = "group"


class MessageIndex:
    """Messages bucketed by sender, receiver, colour and group.

    Buckets preserve insertion order, so enumeration through an index is
    as deterministic as enumeration over the full list.  ``rewind`` pops
    the most recently added messages; because every bucket is
    append-only, undoing an addition is a tail ``pop`` per bucket.
    """

    __slots__ = ("_all", "_by_id", "_buckets")

    def __init__(self) -> None:
        self._all: List[Message] = []
        self._by_id: Dict[str, Message] = {}
        self._buckets: Dict[Tuple[str, object], List[Message]] = {}

    def __len__(self) -> int:
        return len(self._all)

    def __contains__(self, message_id: str) -> bool:
        return message_id in self._by_id

    def add(self, message: Message) -> None:
        """Register one message in every applicable bucket (idempotent)."""
        if message.id in self._by_id:
            return
        self._all.append(message)
        self._by_id[message.id] = message
        for attribute, value in self._keys_of(message):
            self._buckets.setdefault((attribute, value), []).append(message)

    @staticmethod
    def _keys_of(message: Message) -> List[Tuple[str, object]]:
        keys: List[Tuple[str, object]] = [
            (SENDER, message.sender),
            (RECEIVER, message.receiver),
        ]
        if message.color is not None:
            keys.append((COLOR, message.color))
        if message.group is not None:
            keys.append((GROUP, message.group))
        return keys

    def message(self, message_id: str) -> Optional[Message]:
        """The registered message with this id, or ``None``."""
        return self._by_id.get(message_id)

    def all_messages(self) -> List[Message]:
        """Every registered message, in registration order (not a copy)."""
        return self._all

    def bucket(self, attribute: str, value: object) -> List[Message]:
        """Messages whose ``attribute`` equals ``value`` (not a copy)."""
        return self._buckets.get((attribute, value), _EMPTY)

    # Snapshots ------------------------------------------------------------

    def mark(self) -> int:
        """A snapshot token: the number of messages registered so far."""
        return len(self._all)

    def rewind(self, token: int) -> None:
        """Forget every message added after ``mark`` returned ``token``."""
        while len(self._all) > token:
            message = self._all.pop()
            del self._by_id[message.id]
            for key in self._keys_of(message):
                bucket = self._buckets[key]
                popped = bucket.pop()
                assert popped.id == message.id

    def __repr__(self) -> str:
        return "MessageIndex(messages=%d, buckets=%d)" % (
            len(self._all),
            len(self._buckets),
        )


_EMPTY: List[Message] = []
