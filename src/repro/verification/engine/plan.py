"""Compiling forbidden predicates into evaluation plans.

A :class:`CompiledPredicate` fixes, once per predicate, everything the
per-event search would otherwise recompute: a variable order chosen by
guard/conjunct selectivity, the guards and conjuncts checkable at each
binding depth, and a candidate *narrower* per variable that turns
equality guards into index lookups (``color(y) = red`` enumerates only
red messages; ``sender(x) = sender(y)`` with ``y`` bound enumerates only
messages from ``y``'s sender).  Narrowing is purely a candidate filter --
every guard and conjunct is still checked -- so compiled search returns
exactly the assignments the brute-force enumeration of
:mod:`repro.predicates.evaluation` finds, just through far fewer
candidates.

Compilation is cached (:func:`compile_predicate` is memoized on the
frozen :class:`~repro.predicates.ast.ForbiddenPredicate`), so the model
checker pays it once per predicate per process lifetime.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.events import Event, EventKind, Message
from repro.predicates.ast import Conjunct, ForbiddenPredicate
from repro.predicates.guards import (
    ColorGuard,
    GroupGuard,
    Guard,
    ProcessGuard,
    guards_satisfiable,
)
from repro.verification.engine.indexes import COLOR, GROUP, MessageIndex

Assignment = Dict[str, Message]
HasEvent = Callable[[Event], bool]
Before = Callable[[Event, Event], bool]

# Narrower shapes (attribute lookups that bound a variable's candidates):
#   ("color", constant)            -- ColorGuard equality with a constant
#   ("process", role, var, role')  -- ProcessGuard equality to a bound var
#   ("group", var)                 -- GroupGuard equality to a bound var
Narrower = Tuple


@dataclass(frozen=True)
class PlanStep:
    """One variable binding of an evaluation plan."""

    variable: str
    #: Index lookup bounding this variable's candidates (``None`` = all).
    narrower: Optional[Narrower]
    #: Guards that become fully bound at this depth.
    guards: Tuple[Guard, ...]
    #: Conjuncts that become fully bound at this depth.
    conjuncts: Tuple[Conjunct, ...]


def _conjunct_holds(
    conjunct: Conjunct,
    assignment: Assignment,
    has_event: HasEvent,
    before: Before,
) -> bool:
    left = Event(assignment[conjunct.left.variable].id, conjunct.left.kind)
    right = Event(assignment[conjunct.right.variable].id, conjunct.right.kind)
    if not (has_event(left) and has_event(right)):
        return False
    return before(left, right)


def _step_checks_pass(
    step: PlanStep,
    assignment: Assignment,
    has_event: HasEvent,
    before: Before,
) -> bool:
    return all(guard.holds(assignment) for guard in step.guards) and all(
        _conjunct_holds(conjunct, assignment, has_event, before)
        for conjunct in step.conjuncts
    )


def _narrower_for(
    variable: str, bound: Sequence[str], guards: Sequence[Guard]
) -> Optional[Narrower]:
    """The most selective index lookup available for ``variable`` once the
    variables in ``bound`` are assigned."""
    bound_set = set(bound)
    process_join: Optional[Narrower] = None
    group_join: Optional[Narrower] = None
    for guard in guards:
        if isinstance(guard, ColorGuard):
            if guard.equal and guard.variable == variable:
                return ("color", guard.color)
        elif isinstance(guard, ProcessGuard):
            if not guard.equal:
                continue
            for mine, other in ((guard.left, guard.right), (guard.right, guard.left)):
                if (
                    mine[0] == variable
                    and other[0] != variable
                    and other[0] in bound_set
                    and process_join is None
                ):
                    process_join = ("process", mine[1], other[0], other[1])
        elif isinstance(guard, GroupGuard):
            if not guard.equal:
                continue
            for mine, other in ((guard.left, guard.right), (guard.right, guard.left)):
                if (
                    mine == variable
                    and other != variable
                    and other in bound_set
                    and group_join is None
                ):
                    group_join = ("group", other)
    return process_join or group_join


def _selectivity_order(
    predicate: ForbiddenPredicate, first: Optional[str] = None
) -> Tuple[str, ...]:
    """Greedy variable order: bind the most constrained variable next.

    Scores favour variables whose candidates an index lookup can bound
    (colour constants, equality joins to already-bound variables) and
    variables that complete conjuncts or guards early (pruning partial
    assignments at shallow depth).  Ties break on declared order, keeping
    plans deterministic.
    """
    declared = {v: i for i, v in enumerate(predicate.variables)}
    order: List[str] = []
    if first is not None:
        order.append(first)
    remaining = [v for v in predicate.variables if v not in order]
    while remaining:
        best = None
        best_key = None
        bound = set(order)
        for variable in remaining:
            score = 0
            for guard in predicate.guards:
                names = set(guard.variables())
                if variable not in names:
                    continue
                if isinstance(guard, ColorGuard) and guard.equal:
                    score += 4
                elif guard.equal and len(names) > 1 and (names - {variable}) <= bound:
                    score += 3
                if names <= bound | {variable}:
                    score += 1
            for conjunct in predicate.conjuncts:
                names = set(conjunct.variables())
                if variable in names and names <= bound | {variable}:
                    score += 2
            key = (-score, declared[variable])
            if best_key is None or key < best_key:
                best, best_key = variable, key
        assert best is not None
        order.append(best)
        remaining.remove(best)
    return tuple(order)


def _build_steps(
    predicate: ForbiddenPredicate, order: Tuple[str, ...]
) -> Tuple[PlanStep, ...]:
    position = {variable: i for i, variable in enumerate(order)}
    guards_at: List[List[Guard]] = [[] for _ in order]
    for guard in predicate.guards:
        guards_at[max(position[v] for v in guard.variables())].append(guard)
    conjuncts_at: List[List[Conjunct]] = [[] for _ in order]
    for conjunct in predicate.conjuncts:
        conjuncts_at[max(position[v] for v in conjunct.variables())].append(conjunct)
    return tuple(
        PlanStep(
            variable=variable,
            narrower=_narrower_for(variable, order[:depth], predicate.guards),
            guards=tuple(guards_at[depth]),
            conjuncts=tuple(conjuncts_at[depth]),
        )
        for depth, variable in enumerate(order)
    )


@dataclass(frozen=True)
class CompiledPredicate:
    """A forbidden predicate with its precomputed evaluation plans."""

    predicate: ForbiddenPredicate
    #: ``True`` when no run can satisfy the predicate (a self-loop conjunct
    #: like ``x.r ▷ x.s``, or contradictory guards): search is skipped.
    never_satisfiable: bool
    #: The plan for unanchored (batch) search.
    plan: Tuple[PlanStep, ...]
    #: Per variable, the plan that binds it first (anchored search).
    anchored_plans: Dict[str, Tuple[PlanStep, ...]]
    #: Variables appearing in a conjunct term of each event kind: pinning
    #: one of these to the newest message makes the search cover exactly
    #: the instances *using* that event.
    anchor_variables: Dict[EventKind, Tuple[str, ...]]

    @property
    def name(self) -> str:
        return self.predicate.name or "anonymous"

    def _candidates(
        self, step: PlanStep, assignment: Assignment, index: MessageIndex
    ) -> Sequence[Message]:
        narrower = step.narrower
        if narrower is None:
            return index.all_messages()
        if narrower[0] == "color":
            return index.bucket(COLOR, narrower[1])
        if narrower[0] == "process":
            _, role, other, other_role = narrower
            return index.bucket(role, assignment[other].attribute(other_role))
        _, other = narrower
        group = assignment[other].group
        if group is None:
            return ()
        return index.bucket(GROUP, group)

    def _search(
        self,
        steps: Tuple[PlanStep, ...],
        assignment: Assignment,
        depth: int,
        index: MessageIndex,
        has_event: HasEvent,
        before: Before,
    ) -> Iterator[Assignment]:
        if depth == len(steps):
            yield dict(assignment)
            return
        step = steps[depth]
        distinct = self.predicate.distinct
        for message in self._candidates(step, assignment, index):
            if distinct and any(
                bound.id == message.id for bound in assignment.values()
            ):
                continue
            assignment[step.variable] = message
            if _step_checks_pass(step, assignment, has_event, before):
                for complete in self._search(
                    steps, assignment, depth + 1, index, has_event, before
                ):
                    yield complete
            del assignment[step.variable]

    def find(
        self, index: MessageIndex, has_event: HasEvent, before: Before
    ) -> Optional[Assignment]:
        """The first satisfying assignment, or ``None``."""
        if self.never_satisfiable:
            return None
        for assignment in self._search(self.plan, {}, 0, index, has_event, before):
            return assignment
        return None

    def find_anchored(
        self,
        message: Message,
        kind: EventKind,
        index: MessageIndex,
        has_event: HasEvent,
        before: Before,
    ) -> Optional[Assignment]:
        """A satisfying assignment using event ``(message, kind)``, or
        ``None``.  Each candidate anchor variable is pinned to ``message``
        and only the remaining ``m - 1`` variables are searched."""
        if self.never_satisfiable:
            return None
        for variable in self.anchor_variables.get(kind, ()):
            steps = self.anchored_plans[variable]
            assignment: Assignment = {variable: message}
            if not _step_checks_pass(steps[0], assignment, has_event, before):
                continue
            for complete in self._search(
                steps, assignment, 1, index, has_event, before
            ):
                return complete
        return None


def _plan_never_satisfiable(predicate: ForbiddenPredicate) -> bool:
    if any(conjunct.is_intrinsically_false for conjunct in predicate.conjuncts):
        return True
    return not guards_satisfiable(predicate.guards)


@functools.lru_cache(maxsize=None)
def compile_predicate(predicate: ForbiddenPredicate) -> CompiledPredicate:
    """Compile (and cache) the evaluation plans of one predicate."""
    anchor_variables: Dict[EventKind, List[str]] = {}
    for conjunct in predicate.conjuncts:
        for term in (conjunct.left, conjunct.right):
            variables = anchor_variables.setdefault(term.kind, [])
            if term.variable not in variables:
                variables.append(term.variable)
    anchored = {
        variable: _build_steps(
            predicate, _selectivity_order(predicate, first=variable)
        )
        for variables in anchor_variables.values()
        for variable in variables
    }
    return CompiledPredicate(
        predicate=predicate,
        never_satisfiable=_plan_never_satisfiable(predicate),
        plan=_build_steps(predicate, _selectivity_order(predicate)),
        anchored_plans=anchored,
        anchor_variables={
            kind: tuple(variables)
            for kind, variables in anchor_variables.items()
        },
    )
