"""The ARQ sublayer: reliable FIFO channels over a faulty network.

Every protocol in the catalogue assumes the paper's channel model --
no loss, no duplication.  :class:`ReliableProtocol` restores that
assumption *underneath* any existing protocol without modifying it:
each outgoing packet (user data or the inner protocol's control
messages, in one unified per-destination sequence space) carries a
sequence number, receivers acknowledge cumulatively and reassemble in
order, senders retransmit on a timer with exponential backoff and
jitter.  Stacking ``Reliable(FIFOProtocol)`` over a lossy transport
must satisfy the same :class:`~repro.verification.spec.Specification`
checks as ``FIFOProtocol`` over a reliable one.

Wire format (all tuples, sized by
:func:`~repro.simulation.trace.estimate_size`):

``("rdata", seq, inner_tag)``
    tag of a released user message -- segment ``seq`` to that receiver;
``("rctl", seq, payload)``
    control packet tunnelling the inner protocol's ``payload`` as
    segment ``seq``;
``("rack", n)``
    cumulative acknowledgment: every segment below ``n`` arrived.
    Acks are unsequenced and never retransmitted (they are refreshed
    by duplicates instead).

Crash-restart: sequence numbers, unacked segments, and reassembly
buffers are durable (snapshotted); timers and their backoff state are
volatile and rebuilt by :meth:`ReliableProtocol.on_restart`, which also
retransmits everything still unacked.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext

#: An outgoing segment awaiting acknowledgment.
#: ``("data", message, inner_tag)`` or ``("ctl", payload)``.
Segment = Tuple[Any, ...]


class _InnerContext:
    """The context handed to the wrapped protocol: releases and control
    sends are intercepted and sequenced; everything else passes through."""

    def __init__(self, outer: "ReliableProtocol", ctx: HostContext):
        self._outer = outer
        self._ctx = ctx

    @property
    def process_id(self) -> int:
        return self._ctx.process_id

    @property
    def n_processes(self) -> int:
        return self._ctx.n_processes

    @property
    def now(self) -> float:
        return self._ctx.now

    def release(self, message: Message, tag: Any = None) -> None:
        self._outer._send_data(self._ctx, message, tag)

    def deliver(self, message: Message) -> None:
        self._ctx.deliver(message)

    def send_control(self, dst: int, payload: Any) -> None:
        self._outer._send_ctl(self._ctx, dst, payload)

    def schedule(self, delay: float, action) -> None:
        self._ctx.schedule(delay, action)

    def emit(self, probe: str, **data: Any) -> None:
        self._ctx.emit(probe, **data)


class ReliableProtocol(Protocol):
    """Wraps an inner protocol with sequencing, acks, and retransmission.

    ``rto`` is the initial retransmission timeout; each timer expiry
    without cumulative-ack progress multiplies it by ``backoff`` (capped
    at ``max_rto``) and applies ±``jitter`` relative noise.  After
    ``max_retries`` consecutive expiries without progress the sender
    gives up on that peer (the watchdog then reports the stuck
    messages).  The model checker uses a small ``max_retries`` to keep
    the transition tree finite.
    """

    protocol_class = "general"
    accepts_duplicates = True
    volatile_attrs = (
        "_timer_armed",
        "_arm_frontier",
        "_rto_cur",
        "_retries",
        "_rng",
    )
    # Sound because the receive side dedups by sequence number: in a
    # loss-free execution a retransmission is a byte-identical copy that
    # the peer absorbs without the inner protocol ever observing it, so
    # firing the timer cannot change the user-visible run.
    timers_pure_recovery = True

    def __init__(
        self,
        inner: Protocol,
        rto: float = 30.0,
        backoff: float = 2.0,
        max_rto: float = 240.0,
        jitter: float = 0.1,
        max_retries: int = 30,
        retransmit_window: Optional[int] = None,
        send_window: Optional[int] = None,
    ):
        if rto <= 0:
            raise ValueError("rto must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if max_rto < rto:
            raise ValueError("max_rto must be >= rto")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retransmit_window is not None and retransmit_window < 1:
            raise ValueError("retransmit_window must be >= 1 (or None for all)")
        if send_window is not None and send_window < 1:
            raise ValueError("send_window must be >= 1 (or None for unlimited)")
        self.inner = inner
        self.name = "reliable-" + inner.name
        self.rto = rto
        self.backoff = backoff
        self.max_rto = max_rto
        self.jitter = jitter
        self.max_retries = max_retries
        # How many of the lowest unacked segments one expiry retransmits
        # (``None``: the whole window).  Cumulative-ack progress resets
        # the retry counter, so even a window of 1 recovers any number of
        # losses, one timeout apiece -- the model checker uses that to
        # keep its transition tree small.
        self.retransmit_window = retransmit_window
        # Maximum unacked segments in flight per destination (``None``:
        # unlimited).  Excess segments queue here and go out as acks make
        # room.  Deferring a release is exactly the inhibition this
        # protocol family is built on -- to the receiver it is
        # indistinguishable from network latency, so the inner protocol's
        # tags stay correct.  ``send_window=1`` is stop-and-wait, the
        # configuration the model checker explores.
        self.send_window = send_window
        self._queued: Dict[int, list] = {}  # dst -> [segment, ...] awaiting room
        # Durable (survives crash-restart via snapshot/restore):
        self._next_seq: Dict[int, int] = {}  # dst -> next segment seq
        self._unacked: Dict[int, Dict[int, Segment]] = {}  # dst -> seq -> segment
        self._expected: Dict[int, int] = {}  # src -> next in-order seq
        self._buffer: Dict[int, Dict[int, Segment]] = {}  # src -> seq -> segment
        # Volatile (lost at a crash, rebuilt by on_restart):
        self._timer_armed: Dict[int, bool] = {}
        self._arm_frontier: Dict[int, int] = {}  # dst -> min unacked at arm
        self._rto_cur: Dict[int, float] = {}
        self._retries: Dict[int, int] = {}
        self._rng = random.Random(0)

    # -- lifecycle ----------------------------------------------------------

    def on_start(self, ctx: HostContext) -> None:
        self._rng = random.Random(0xA9C1 ^ ctx.process_id)
        self.inner.on_start(_InnerContext(self, ctx))

    def on_restart(self, ctx: HostContext) -> None:
        """Rebuild volatile state and push recovery: the crash destroyed
        the timers, so everything unacked is retransmitted immediately."""
        self._timer_armed = {}
        self._arm_frontier = {}
        self._rto_cur = {}
        self._retries = {}
        self._rng = random.Random(0xA9C1 ^ ctx.process_id)
        self.inner.on_restart(_InnerContext(self, ctx))
        for dst in sorted(self._unacked):
            if self._unacked[dst]:
                self._retransmit_all(ctx, dst)
                self._arm(ctx, dst)

    def on_link_restored(self, ctx: HostContext, dst: int) -> None:
        """The channel to ``dst`` healed (reconnect supervisor callback).

        Everything still unacked there is retransmitted immediately, and
        the per-peer give-up state resets: ``max_retries`` expiries
        without progress meant "the peer is unreachable", which the
        reconnect just disproved.  The receive side needs no repair --
        sequence-number dedup absorbs whatever overlap the flush and the
        retransmission produce.
        """
        self._retries[dst] = 0
        self._rto_cur[dst] = self.rto
        if self._unacked.get(dst):
            ctx.emit("retx.resume", peer=dst, unacked=len(self._unacked[dst]))
            self._retransmit_all(ctx, dst)
            self._arm(ctx, dst)

    # -- user-facing hooks --------------------------------------------------

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self.inner.on_invoke(_InnerContext(self, ctx), message)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        kind, seq, inner_tag = tag
        if kind != "rdata":
            raise ValueError("unexpected reliable data tag %r" % (tag,))
        self._segment_arrived(
            ctx, message.sender, seq, ("data", message, inner_tag)
        )

    def on_duplicate(self, ctx: HostContext, message: Message, tag: Any) -> None:
        """A repeat copy of a data segment: refresh the cumulative ack so
        the sender stops retransmitting; never re-delivered.

        The refresh only matters when the copy is already covered by the
        cumulative ack (the sender retransmitted because the ack was
        lost); a repeat of a still-buffered gap segment would re-ack the
        same value, so it is suppressed.
        """
        _, seq, _ = tag
        if seq < self._expected.get(message.sender, 0):
            self._send_ack(ctx, message.sender)

    def on_control(self, ctx: HostContext, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "rack":
            self._ack_arrived(ctx, src, payload[1])
        elif kind == "rctl":
            self._segment_arrived(ctx, src, payload[1], ("ctl", payload[2]))
        else:
            raise ValueError("unexpected reliable control payload %r" % (payload,))

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """ARQ-level holds first (reassembly gaps, unacked sends), then
        whatever the inner protocol says."""
        for src, buffered in self._buffer.items():
            for seq, segment in buffered.items():
                if segment[0] == "data" and segment[1].id == message_id:
                    return (
                        "ARQ reassembly holding seq %d from P%d, waiting for seq %d"
                        % (seq, src, self._expected.get(src, 0))
                    )
        for dst, queued in self._queued.items():
            for position, segment in enumerate(queued):
                if segment[0] == "data" and segment[1].id == message_id:
                    return (
                        "ARQ send window to P%d full, queued at position %d"
                        % (dst, position)
                    )
        for dst, unacked in self._unacked.items():
            for seq, segment in unacked.items():
                if segment[0] == "data" and segment[1].id == message_id:
                    retries = self._retries.get(dst, 0)
                    if retries >= self.max_retries and not self._timer_armed.get(
                        dst
                    ):
                        return (
                            "gave up retransmitting seq %d to P%d after %d retries"
                            % (seq, dst, self.max_retries)
                        )
                    return "awaiting ack of seq %d from P%d (retries: %d)" % (
                        seq,
                        dst,
                        retries,
                    )
        return self.inner.blocking_reason(message_id)

    # -- sender side ---------------------------------------------------------

    def _next(self, dst: int) -> int:
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        return seq

    def _window_full(self, dst: int) -> bool:
        return (
            self.send_window is not None
            and len(self._unacked.get(dst, {})) >= self.send_window
        )

    def _send_data(self, ctx: HostContext, message: Message, inner_tag: Any) -> None:
        if self._window_full(message.receiver):
            self._queued.setdefault(message.receiver, []).append(
                ("data", message, inner_tag)
            )
            return
        self._transmit_segment(ctx, message.receiver, ("data", message, inner_tag))

    def _send_ctl(self, ctx: HostContext, dst: int, payload: Any) -> None:
        if self._window_full(dst):
            self._queued.setdefault(dst, []).append(("ctl", payload))
            return
        self._transmit_segment(ctx, dst, ("ctl", payload))

    def _transmit_segment(self, ctx: HostContext, dst: int, segment: Segment) -> None:
        seq = self._next(dst)
        self._unacked.setdefault(dst, {})[seq] = segment
        if segment[0] == "data":
            _, message, inner_tag = segment
            ctx.release(message, tag=("rdata", seq, inner_tag))
        else:
            ctx.send_control(dst, ("rctl", seq, segment[1]))
        self._arm(ctx, dst)

    def _drain_queue(self, ctx: HostContext, dst: int) -> None:
        queued = self._queued.get(dst)
        while queued and not self._window_full(dst):
            self._transmit_segment(ctx, dst, queued.pop(0))

    def _retransmit_all(self, ctx: HostContext, dst: int) -> None:
        window = sorted(self._unacked.get(dst, {}))
        if self.retransmit_window is not None:
            window = window[: self.retransmit_window]
        for seq in window:
            segment = self._unacked[dst][seq]
            if segment[0] == "data":
                _, message, inner_tag = segment
                ctx.retransmit(message, tag=("rdata", seq, inner_tag))
            else:
                ctx.retransmit_control(dst, ("rctl", seq, segment[1]))

    def _arm(self, ctx: HostContext, dst: int) -> None:
        if self._timer_armed.get(dst) or not self._unacked.get(dst):
            return
        if self._retries.get(dst, 0) >= self.max_retries:
            return  # the next expiry would only give up: don't arm it
        self._timer_armed[dst] = True
        self._arm_frontier[dst] = min(self._unacked[dst])
        rto = self._rto_cur.get(dst, self.rto)
        delay = rto * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))
        ctx.schedule(delay, lambda: self._on_timer(ctx, dst))

    def _on_timer(self, ctx: HostContext, dst: int) -> None:
        self._timer_armed[dst] = False
        if not self._unacked.get(dst):
            return  # everything acked in the meantime
        if min(self._unacked[dst]) != self._arm_frontier.get(dst):
            # Acks advanced the frontier while this timer ran: the peer is
            # responsive, so restart the clock for the newer segments
            # instead of retransmitting them prematurely.
            self._arm(ctx, dst)
            return
        self._retries[dst] = self._retries.get(dst, 0) + 1
        self._retransmit_all(ctx, dst)
        self._rto_cur[dst] = min(
            self._rto_cur.get(dst, self.rto) * self.backoff, self.max_rto
        )
        self._arm(ctx, dst)  # no-op once the retry cap is reached

    def _ack_arrived(self, ctx: HostContext, src: int, cumulative: int) -> None:
        unacked = self._unacked.get(src, {})
        acked = [seq for seq in unacked if seq < cumulative]
        for seq in acked:
            del unacked[seq]
        ctx.emit("retx.ack", peer=src, cumulative=cumulative)
        if acked:
            # Progress: backoff and the give-up counter start over.
            self._retries[src] = 0
            self._rto_cur[src] = self.rto
            self._drain_queue(ctx, src)
        if self._unacked.get(src):
            self._arm(ctx, src)

    # -- receiver side --------------------------------------------------------

    def _segment_arrived(
        self, ctx: HostContext, src: int, seq: int, segment: Segment
    ) -> None:
        entry_expected = self._expected.get(src, 0)
        expected = entry_expected
        buffered = self._buffer.setdefault(src, {})
        if seq >= expected and seq not in buffered:
            buffered[seq] = segment
            while expected in buffered:
                ready = buffered.pop(expected)
                expected += 1
                self._expected[src] = expected
                ictx = _InnerContext(self, ctx)
                if ready[0] == "data":
                    self.inner.on_user_message(ictx, ready[1], ready[2])
                else:
                    self.inner.on_control(ictx, src, ready[1])
            self._expected[src] = expected
        # Ack when the cumulative frontier moved, or when a stale segment
        # signals the sender lost an earlier ack.  A gap arrival would
        # re-ack an unchanged value, so it stays quiet (the sender's
        # timer retransmits the whole unacked window anyway).
        if expected > entry_expected or seq < entry_expected:
            self._send_ack(ctx, src)

    def _send_ack(self, ctx: HostContext, src: int) -> None:
        ctx.send_control(src, ("rack", self._expected.get(src, 0)))


def make_reliable(
    inner_factory: Callable[[int, int], Protocol], **arq_params: Any
) -> Callable[[int, int], Protocol]:
    """Wrap a protocol factory so every instance runs over the ARQ
    sublayer; keyword arguments parameterise :class:`ReliableProtocol`."""

    def factory(process_id: int, n_processes: int) -> Protocol:
        return ReliableProtocol(inner_factory(process_id, n_processes), **arq_params)

    return factory
