"""Inhibitory protocol implementations, one per class of the paper.

=================  ==========  =====================================
Protocol           Class       Implements
=================  ==========  =====================================
TaglessProtocol    tagless     X_async (do nothing)
FifoProtocol       tagged      FIFO channels (sequence numbers)
CausalRstProtocol  tagged      causal ordering (Raynal-Schiper-Toueg)
CausalSesProtocol  tagged      causal ordering (Schiper-Eggli-Sandoz)
FlushChannelProtocol tagged    F-channel flush orderings
KWeakerCausalProtocol tagged   k-weaker causal ordering (§6)
SyncCoordinatorProtocol general logically synchronous (sequencer)
SyncRendezvousProtocol general  logically synchronous (rendezvous+retry)
GeneratedTaggedProtocol tagged any order-≤1 forbidden predicate
ReliableProtocol   general     ARQ sublayer restoring reliable FIFO
                               channels under any protocol above
=================  ==========  =====================================
"""

from repro.protocols.base import Protocol, make_factory
from repro.protocols.tagless import TaglessProtocol
from repro.protocols.fifo import FifoProtocol
from repro.protocols.causal_rst import CausalRstProtocol
from repro.protocols.causal_ses import CausalSesProtocol
from repro.protocols.flush import FlushChannelProtocol
from repro.protocols.k_weaker import KWeakerCausalProtocol
from repro.protocols.sync_coordinator import SyncCoordinatorProtocol
from repro.protocols.sync_rendezvous import SyncRendezvousProtocol
from repro.protocols.generated import GeneratedTaggedProtocol
from repro.protocols.reliable import ReliableProtocol, make_reliable
from repro.protocols.registry import (
    CatalogueEntry,
    cached_catalogue,
    catalogue,
    catalogue_entry,
)

__all__ = [
    "Protocol",
    "make_factory",
    "CatalogueEntry",
    "cached_catalogue",
    "catalogue",
    "catalogue_entry",
    "TaglessProtocol",
    "FifoProtocol",
    "CausalRstProtocol",
    "CausalSesProtocol",
    "FlushChannelProtocol",
    "KWeakerCausalProtocol",
    "SyncCoordinatorProtocol",
    "SyncRendezvousProtocol",
    "GeneratedTaggedProtocol",
    "ReliableProtocol",
    "make_reliable",
]
