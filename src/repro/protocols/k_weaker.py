"""k-weaker causal ordering (§6) by causal-barrier tagging.

The specification forbids a causal chain of ``k + 2`` sends whose last
message is delivered (causally) before the first.  Its predicate graph
cycle has order 1, so tagging must suffice; this protocol is the witness.

Strategy: every message ``m`` carries, for each message ``y`` in its
causal past, the *send-chain depth* ``d(y, m)`` -- the length of the
longest chain of sends ``y.s ▷ ... ▷ m.s`` -- saturated at ``k + 1``.
The receiver ``q`` holds ``m`` until every ``y`` destined to ``q`` with
``d(y, m) ≥ k + 1`` has been delivered locally.  Chains shorter than
``k + 1`` never complete a forbidden instance, so unlike strict causal
ordering the protocol tolerates bounded out-of-order delivery.

Messages whose delivery is already in the sender's causal past are pruned
from the tag (their inversion is impossible), keeping tags bounded by the
number of in-flight messages in practice.  ``k = 0`` degenerates to causal
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext


@dataclass
class _Known:
    dest: int
    depth: int  # longest send chain from y.s into my causal past, saturated


class KWeakerCausalProtocol(Protocol):
    """Deliver within ``k`` of causal send order, by depth tagging."""

    name_template = "k-weaker-causal(%d)"
    protocol_class = "tagged"

    def __init__(self, k: int = 1, prune_delivered: bool = True):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self.cap = k + 1
        self.prune_delivered = prune_delivered
        self.name = self.name_template % k
        self._known: Dict[str, _Known] = {}
        self._known_delivered: Set[str] = set()
        self._my_delivered: Set[str] = set()
        self._pending: List[Tuple[Message, Dict[str, Tuple[int, int]], Set[str]]] = []

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        entries = {
            mid: (info.dest, min(info.depth + 1, self.cap))
            for mid, info in self._known.items()
            if not (self.prune_delivered and mid in self._known_delivered)
        }
        tag = (entries, set(self._known_delivered))
        # The new send extends every known chain by one step.
        for info in self._known.values():
            info.depth = min(info.depth + 1, self.cap)
        self._known[message.id] = _Known(dest=message.receiver, depth=0)
        ctx.release(message, tag=tag)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        entries, sender_delivered = tag
        self._pending.append((message, dict(entries), set(sender_delivered)))
        self._drain(ctx)

    def _deliverable(
        self,
        ctx: HostContext,
        entries: Dict[str, Tuple[int, int]],
        sender_delivered: Set[str],
    ) -> bool:
        me = ctx.process_id
        for mid, (dest, depth) in entries.items():
            if dest != me or depth < self.cap:
                continue
            if mid in self._my_delivered or mid in sender_delivered:
                continue
            return False
        return True

    def _drain(self, ctx: HostContext) -> None:
        progress = True
        while progress:
            progress = False
            for index, (message, entries, sender_delivered) in enumerate(
                self._pending
            ):
                if self._deliverable(ctx, entries, sender_delivered):
                    del self._pending[index]
                    self._absorb(message, entries, sender_delivered)
                    ctx.deliver(message)
                    progress = True
                    break

    def _absorb(
        self,
        message: Message,
        entries: Dict[str, Tuple[int, int]],
        sender_delivered: Set[str],
    ) -> None:
        # The sender's causal past is now in ours.
        for mid, (dest, depth) in entries.items():
            existing = self._known.get(mid)
            if existing is None:
                self._known[mid] = _Known(dest=dest, depth=depth)
            else:
                existing.depth = max(existing.depth, depth)
        existing = self._known.get(message.id)
        if existing is None:
            self._known[message.id] = _Known(dest=message.receiver, depth=0)
        self._known_delivered |= sender_delivered
        self._known_delivered.add(message.id)
        self._my_delivered.add(message.id)
