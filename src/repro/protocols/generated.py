"""A tagged protocol synthesized from a forbidden predicate.

Theorem 3.2 promises that any specification whose predicate graph has a
cycle of order ≤ 1 is implementable by tagging alone.  This module makes
the promise constructive (the direction the companion paper [19] pursues):

- every user message is tagged with the *user-view causal past* of its
  send event (events, their order, and message attributes);
- a receiver ``q`` holds a delivery ``d.r`` whenever executing it now
  would create -- or causally commit ``q`` to -- a forbidden instance:
  an assignment of known messages to the predicate's variables in which
  every conjunct already holds, or would hold once some still-undelivered
  message ``x`` destined to ``q`` is delivered after ``d.r``.

The second clause is what makes the rule live for order-1 predicates: the
pattern's β message ``x`` is deliverable *first* (delivering ``x`` before
``d`` breaks the would-be instance), so the induced delivery order is
well-founded.  For causal ordering the rule specializes to the classic
"deliver ``d`` only after every message sent causally before ``d``
destined to you" condition; for FIFO it degenerates to sequence order.

The single-future check is *complete* only for predicates whose pattern
contains at most two delivery positions -- a completion delivery ``x.r``
(right operands only) plus the delivery being decided (left operand of
the conjunct into ``x.r``).  That covers the canonical order-1 shapes
(causal B2/B3, FIFO, flush variants, k-weaker causal).  Shapes like
``B1 ≡ x.s ▷ y.r ∧ y.r ▷ x.r`` put a third delivery in play, and a state
can become doomed through *two* future deliveries at one site, which no
single-future check sees.  For those, the protocol statically falls back
to full causal-order delivery: every order-1 specification contains
``X_co`` (Theorem 3.2), so enforcing causal order is always sound -- at
the price of more inhibition than strictly necessary.

The tag here is knowledge-complete and therefore large; the hand-written
protocols in this package are the compressed special cases.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.events import DELIVER, SEND, Event, EventKind, Message
from repro.poset import PartialOrder
from repro.predicates.ast import Conjunct, ForbiddenPredicate
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext

_KIND = {"s": SEND, "r": DELIVER}


class _Knowledge:
    """What one process knows about the run's user-view events."""

    def __init__(self) -> None:
        self.order = PartialOrder()
        self.events: Set[Event] = set()
        self.messages: Dict[str, Message] = {}

    def learn_message(self, message: Message) -> None:
        self.messages.setdefault(message.id, message)

    def learn_event(self, event: Event) -> None:
        if event not in self.events:
            self.events.add(event)
            self.order.add_element(event)

    def learn_relation(self, before: Event, after: Event) -> None:
        self.learn_event(before)
        self.learn_event(after)
        if before != after:
            self.order.add_relation(before, after)

    def knows_before(self, a: Event, b: Event) -> bool:
        if a not in self.events or b not in self.events:
            return False
        return self.order.less(a, b)


def _encode_event(event: Event) -> Tuple[str, str]:
    return (event.message_id, event.kind.symbol)


def _decode_event(item: Tuple[str, str]) -> Event:
    return Event(item[0], _KIND[item[1]])


def single_future_applicable(predicate: ForbiddenPredicate) -> bool:
    """Whether the single-future delay rule is complete for ``predicate``.

    Required shape:

    - the ``.r`` terms involve at most two variables: the β variable,
      whose ``.r`` occurs only as a right operand, and optionally one
      other whose ``.r`` occurs only as the left operand of conjuncts
      into the β variable's ``.r``;
    - every conjunct into the β variable's ``.r`` has a *delivery* on the
      left.  A send there (the ``B3`` shape ``x.s ▷ y.s ∧ y.s ▷ x.r``)
      means the mere release of ``y`` -- with ``x.s`` already in the
      sender's past and ``x.r`` inevitable at that site -- commits the
      violation, and the delivery-side rule never gets a say.
    """
    deliver_lefts = set()
    deliver_rights = set()
    for conjunct in predicate.conjuncts:
        if conjunct.left.kind is DELIVER:
            deliver_lefts.add(conjunct.left.variable)
        if conjunct.right.kind is DELIVER:
            deliver_rights.add(conjunct.right.variable)
    if len(deliver_lefts | deliver_rights) > 2:
        return False
    both = deliver_lefts & deliver_rights
    if both:
        return False  # some variable's delivery is both consumed and produced
    if len(deliver_rights) > 1:
        return False
    if deliver_rights:
        beta = next(iter(deliver_rights))
        for conjunct in predicate.conjuncts:
            into_beta = (
                conjunct.right.kind is DELIVER
                and conjunct.right.variable == beta
            )
            if into_beta and conjunct.left.kind is not DELIVER:
                return False  # the B3 shape: a send commits the pattern
            if conjunct.left.kind is DELIVER and not into_beta:
                return False  # a third delivery position
    return True


class GeneratedTaggedProtocol(Protocol):
    """Generic tagged protocol for order-≤1 forbidden predicates."""

    protocol_class = "tagged"

    def __init__(self, predicates: Sequence[ForbiddenPredicate]):
        if isinstance(predicates, ForbiddenPredicate):
            predicates = [predicates]
        self.predicates = list(predicates)
        if not self.predicates:
            raise ValueError("need at least one predicate")
        self.name = "generated(%s)" % ",".join(
            p.name or "anon" for p in self.predicates
        )
        # Exact minimal-delay checking where complete; full causal-order
        # delivery (which implies every order-1 spec) otherwise.
        self.causal_fallback = not all(
            single_future_applicable(p) for p in self.predicates
        )
        self._knowledge = _Knowledge()
        # Events of the user-view causal past of this process's *next*
        # user event (its own events plus pasts of delivered messages).
        self._my_past: Set[Event] = set()
        self._my_events: List[Event] = []
        self._my_delivered: Set[str] = set()
        self._pending: List[Tuple[Message, Any]] = []

    # -- tagging ----------------------------------------------------------

    def _build_tag(self, send_event: Event) -> Dict[str, Any]:
        events = sorted(self._my_past)
        # Generating pairs suffice: the receiver's knowledge closes them
        # transitively, so the tag stays near-linear in the past size.
        relations = [
            (_encode_event(a), _encode_event(b))
            for a, b in self._knowledge.order.generating_pairs()
            if a in self._my_past and b in self._my_past
        ]
        relations.extend(
            (_encode_event(e), _encode_event(send_event)) for e in events
        )
        attrs = {}
        for event in events:
            message = self._knowledge.messages[event.message_id]
            attrs[message.id] = (message.sender, message.receiver, message.color)
        return {
            "events": [_encode_event(e) for e in events],
            "relations": relations,
            "attrs": attrs,
        }

    def _absorb_tag(self, message: Message, tag: Dict[str, Any]) -> None:
        for mid, (sender, receiver, color) in tag["attrs"].items():
            self._knowledge.learn_message(
                Message(id=mid, sender=sender, receiver=receiver, color=color)
            )
        self._knowledge.learn_message(message)
        send_event = Event.send(message.id)
        self._knowledge.learn_event(send_event)
        for item in tag["events"]:
            self._knowledge.learn_event(_decode_event(item))
        for before, after in tag["relations"]:
            self._knowledge.learn_relation(
                _decode_event(before), _decode_event(after)
            )

    # -- protocol hooks ----------------------------------------------------

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self._knowledge.learn_message(message)
        send_event = Event.send(message.id)
        tag = self._build_tag(send_event)
        self._record_own_event(send_event)
        ctx.release(message, tag=tag)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._absorb_tag(message, tag)
        self._pending.append((message, tag))
        self._drain(ctx)

    # -- delivery rule -----------------------------------------------------

    def _record_own_event(self, event: Event) -> None:
        self._knowledge.learn_event(event)
        for prior in self._my_events:
            self._knowledge.learn_relation(prior, event)
        self._my_events.append(event)
        self._my_past.add(event)
        # The event's known past joins my past.
        self._my_past |= self._knowledge.order.down_set(event)

    def _drain(self, ctx: HostContext) -> None:
        progress = True
        while progress:
            progress = False
            for index, (message, tag) in enumerate(self._pending):
                if self._safe_to_deliver(ctx, message):
                    del self._pending[index]
                    deliver_event = Event.deliver(message.id)
                    self._knowledge.learn_relation(
                        Event.send(message.id), deliver_event
                    )
                    self._record_own_event(deliver_event)
                    self._my_delivered.add(message.id)
                    ctx.deliver(message)
                    progress = True
                    break

    def _safe_to_deliver(self, ctx: HostContext, candidate: Message) -> bool:
        """Would delivering ``candidate`` now commit us to a violation?"""
        if self.causal_fallback:
            return self._causally_deliverable(ctx, candidate)
        hypothetical = Event.deliver(candidate.id)
        for predicate in self.predicates:
            if self._unsafe_instance_exists(ctx, predicate, candidate, hypothetical):
                return False
        return True

    def _causally_deliverable(self, ctx: HostContext, candidate: Message) -> bool:
        """Every message destined here whose send causally precedes the
        candidate's send has been delivered (full causal order)."""
        me = ctx.process_id
        candidate_send = Event.send(candidate.id)
        for event in self._knowledge.order.down_set(candidate_send):
            if event.kind is not SEND:
                continue
            message = self._knowledge.messages.get(event.message_id)
            if (
                message is not None
                and message.receiver == me
                and message.id not in self._my_delivered
            ):
                return False
        return True

    def _unsafe_instance_exists(
        self,
        ctx: HostContext,
        predicate: ForbiddenPredicate,
        candidate: Message,
        hypothetical: Event,
    ) -> bool:
        known = sorted(self._knowledge.messages.values(), key=lambda m: m.id)
        me = ctx.process_id

        def conjunct_status(
            conjunct: Conjunct,
            assignment: Dict[str, Message],
            future_var: Optional[str],
        ) -> Optional[bool]:
            """Three-valued: True (holds, with ``hypothetical`` placed at
            this process and ``future_var``'s delivery after it), False
            (cannot hold), None (not yet bound)."""
            left_msg = assignment.get(conjunct.left.variable)
            right_msg = assignment.get(conjunct.right.variable)
            if left_msg is None or right_msg is None:
                return None
            left = Event(left_msg.id, conjunct.left.kind)
            right = Event(right_msg.id, conjunct.right.kind)
            future_event = (
                Event.deliver(assignment[future_var].id) if future_var else None
            )
            if future_event is not None and left == future_event:
                # x.r ▷ b with x.r strictly in the future: cannot hold.
                return False
            if future_event is not None and right == future_event:
                # a ▷ x.r where x.r would happen at me after `hypothetical`.
                return self._would_precede_my_future(left, hypothetical)
            return self._holds_with_hypothetical(left, right, hypothetical)

        variables = predicate.variables

        def viable(assignment: Dict[str, Message], future_var: Optional[str]) -> bool:
            """No bound conjunct is already False (prune check)."""
            return all(
                conjunct_status(conjunct, assignment, future_var) is not False
                for conjunct in predicate.conjuncts
            )

        def search(depth: int, assignment: Dict[str, Message],
                   future_var: Optional[str]) -> bool:
            if depth == len(variables):
                if future_var is None:
                    return False
                for guard in predicate.guards:
                    if not guard.holds(assignment):
                        return False
                return all(
                    conjunct_status(conjunct, assignment, future_var) is True
                    for conjunct in predicate.conjuncts
                )
            variable = variables[depth]
            for message in known:
                if predicate.distinct and any(
                    bound.id == message.id for bound in assignment.values()
                ):
                    continue
                assignment[variable] = message
                # This message may play the future-delivery role if it is
                # destined to us and not yet delivered.
                roles: List[Optional[str]] = [future_var]
                if (
                    future_var is None
                    and message.receiver == me
                    and message.id not in self._my_delivered
                ):
                    roles.append(variable)
                for role in roles:
                    if not viable(assignment, role):
                        continue
                    if search(depth + 1, assignment, role):
                        del assignment[variable]
                        return True
                del assignment[variable]
            return False

        return search(0, {}, None)

    def _holds_with_hypothetical(
        self, left: Event, right: Event, hypothetical: Event
    ) -> bool:
        """``left ▷ right`` once ``hypothetical`` executes at this process."""
        if right == hypothetical:
            # The candidate's own causal past (its tag) precedes its
            # delivery too, not just our local past.
            return self._would_precede_my_future(left, hypothetical)
        return self._knowledge.knows_before(left, right)

    def _would_precede_my_future(
        self, event: Event, hypothetical: Optional[Event]
    ) -> bool:
        """Is ``event`` in the causal past of this process's *next* user
        event, assuming ``hypothetical`` (a delivery here) executes first?"""
        if event in self._my_past:
            return True
        if hypothetical is not None:
            if event == hypothetical or event == Event.send(hypothetical.message_id):
                return True
            if event in self._knowledge.events and self._knowledge.knows_before(
                event, Event.send(hypothetical.message_id)
            ):
                return True
        return False
