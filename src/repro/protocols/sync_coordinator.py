"""Logically synchronous ordering via a sequencing coordinator.

Process 0 grants one message transfer at a time: a sender requests, waits
for the grant, releases its message; the receiver delivers on arrival and
reports completion.  Message "intervals" (send to delivery) are therefore
disjoint in virtual time, so every run is logically synchronous -- the
grant order is the numbering ``T`` of the SYNC condition.

This is a *general* protocol: requests, grants and completions are control
messages, which Theorem 1 shows are unavoidable for this specification.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext

COORDINATOR = 0

REQ = "req"
GRANT = "grant"
DONE = "done"


class SyncCoordinatorProtocol(Protocol):
    """Sequencer-based logically synchronous delivery."""

    name = "sync-coordinator"
    protocol_class = "general"

    def __init__(self) -> None:
        # Sender state (all processes).
        self._outbox: Deque[Message] = deque()
        # Coordinator state (used only at process 0).
        self._grant_queue: Deque[int] = deque()
        self._busy = False

    # -- helpers ------------------------------------------------------------

    def _to_coordinator(self, ctx: HostContext, payload: Any) -> None:
        if ctx.process_id == COORDINATOR:
            self.on_control(ctx, ctx.process_id, payload)
        else:
            ctx.send_control(COORDINATOR, payload)

    # -- protocol hooks ------------------------------------------------------

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self._outbox.append(message)
        self._to_coordinator(ctx, (REQ,))

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        ctx.deliver(message)
        self._to_coordinator(ctx, (DONE,))

    def on_control(self, ctx: HostContext, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == REQ:
            self._grant_queue.append(src)
            self._pump(ctx)
        elif kind == GRANT:
            self._release_head(ctx)
        elif kind == DONE:
            self._busy = False
            self._pump(ctx)
        else:
            raise ValueError("unknown control payload %r" % (payload,))

    # -- coordinator logic -------------------------------------------------

    def _pump(self, ctx: HostContext) -> None:
        if ctx.process_id != COORDINATOR:
            raise RuntimeError("grant queue touched outside the coordinator")
        if self._busy or not self._grant_queue:
            return
        self._busy = True
        grantee = self._grant_queue.popleft()
        if grantee == COORDINATOR:
            self._release_head(ctx)
        else:
            ctx.send_control(grantee, (GRANT,))

    def _release_head(self, ctx: HostContext) -> None:
        message = self._outbox.popleft()
        ctx.release(message, tag=None)

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Name where in the grant pipeline an unreleased message sits."""
        for position, message in enumerate(self._outbox):
            if message.id != message_id:
                continue
            if position > 0:
                return (
                    "queued at outbox position %d behind an ungranted request"
                    % position
                )
            if self._grant_queue or self._busy:
                # Only meaningful at the coordinator, where the queue lives.
                return "awaiting grant (coordinator busy=%s, %d request(s) queued)" % (
                    self._busy,
                    len(self._grant_queue),
                )
            return "awaiting grant from the coordinator (P%d)" % COORDINATOR
        return None
