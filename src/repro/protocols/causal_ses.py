"""Causal ordering by destination constraints (Schiper, Eggli & Sandoz 1989).

Instead of an ``n x n`` matrix, each process ``Pi`` keeps a vector clock
``VT`` (counting its own sends) and a constraint table ``V_P`` mapping
destinations to timestamps: ``V_P[j] = t`` means "messages timestamped
``t`` or earlier destined to ``Pj`` precede anything I send next".  A
message to ``Pj`` carries ``(tm, V_P)``; ``Pj`` buffers it while its own
entry in the carried table is not yet dominated by its clock.

Same protocol class as RST (tagged, no control messages) with a smaller
typical tag.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext

Vector = Tuple[int, ...]


def _leq(a: Vector, b: Vector) -> bool:
    return all(x <= y for x, y in zip(a, b))


def _merge(a: Vector, b: Vector) -> Vector:
    return tuple(max(x, y) for x, y in zip(a, b))


class CausalSesProtocol(Protocol):
    """The SES destination-constraint protocol."""

    name = "causal-ses"
    protocol_class = "tagged"

    def __init__(self) -> None:
        self._clock: Optional[List[int]] = None
        self._constraints: Dict[int, Vector] = {}
        self._pending: List[Tuple[Message, Vector, Dict[int, Vector]]] = []
        self._me: Optional[int] = None

    def _ensure_state(self, ctx: HostContext) -> None:
        if self._clock is None:
            self._clock = [0] * ctx.n_processes
        self._me = ctx.process_id

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self._ensure_state(ctx)
        assert self._clock is not None
        self._clock[ctx.process_id] += 1
        timestamp = tuple(self._clock)
        tag = (timestamp, dict(self._constraints))
        # Record that anything sent later must follow this message at its
        # destination.
        existing = self._constraints.get(message.receiver)
        self._constraints[message.receiver] = (
            timestamp if existing is None else _merge(existing, timestamp)
        )
        ctx.release(message, tag=tag)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._ensure_state(ctx)
        timestamp, constraints = tag
        self._pending.append((message, tuple(timestamp), dict(constraints)))
        self._drain(ctx)

    def _deliverable(self, ctx: HostContext, constraints: Dict[int, Vector]) -> bool:
        assert self._clock is not None
        own = constraints.get(ctx.process_id)
        return own is None or _leq(own, tuple(self._clock))

    def _drain(self, ctx: HostContext) -> None:
        assert self._clock is not None
        progress = True
        while progress:
            progress = False
            for index, (message, timestamp, constraints) in enumerate(self._pending):
                if self._deliverable(ctx, constraints):
                    del self._pending[index]
                    # Advance the clock past the message and adopt the
                    # sender's constraint knowledge.
                    self._clock = list(_merge(tuple(self._clock), timestamp))
                    for dest, vector in constraints.items():
                        if dest == ctx.process_id:
                            continue
                        existing = self._constraints.get(dest)
                        self._constraints[dest] = (
                            vector if existing is None else _merge(existing, vector)
                        )
                    ctx.deliver(message)
                    progress = True
                    break

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Name the destination constraint a buffered message waits on
        (its carried ``V_P`` entry not yet dominated by the local clock)."""
        if self._clock is None or self._me is None:
            return None
        for message, _timestamp, constraints in self._pending:
            if message.id != message_id:
                continue
            own = constraints.get(self._me)
            if own is None or _leq(own, tuple(self._clock)):
                return None
            lagging = [
                "P%d (clock %d < constraint %d)" % (k, have, need)
                for k, (have, need) in enumerate(zip(self._clock, own))
                if have < need
            ]
            return "buffered until clock dominates %r; behind on %s" % (
                own,
                ", ".join(lagging),
            )
        return None
