"""Decentralized logically synchronous ordering by rendezvous with retry.

A Bagrodia-style binary-rendezvous scheme (the paper cites this line of
work for CSP guard implementations [2, 3, 6]):

1. ``REQ``  (control) -- the sender asks its receiver for an audience.
2. ``ACK`` / ``NACK`` (control) -- the receiver answers immediately:
   ``ACK`` iff it is *completely free* (no commitment, no transfer of its
   own anywhere between its ``REQ`` and its ``FIN``); otherwise ``NACK``.
3. payload (user) -- sent on ``ACK``; the receiver, committed since its
   ``ACK``, delivers on arrival and replies ``FIN``.
4. On ``NACK`` the sender backs off for a random (seeded) delay and
   retries; while backing off it is free, so symmetric livelock dissolves.

Why every run is logically synchronous: each process participates in at
most one transfer between that transfer's start and completion, and a
sender stays busy until ``FIN`` -- *after* the remote delivery.  Hence any
user event causally after ``x.s`` (other than ``x``'s own events) occurs
in real time after ``x.r``.  Around a crown
``x1.s ▷ x2.r ∧ ... ∧ xk.s ▷ x1.r`` that gives
``rt(x1.r) < rt(x2.r) < ... < rt(x1.r)`` -- a contradiction, so no crown
exists and the message graph is acyclic.

Cost: three control messages per transfer plus two per refused attempt;
Theorem 1 shows such control traffic is unavoidable for this class.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Optional

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext

REQ = "req"
ACK = "ack"
NACK = "nack"
FIN = "fin"

IDLE = "idle"
AWAITING_ACK = "awaiting_ack"
AWAITING_FIN = "awaiting_fin"
BACKOFF = "backoff"


class SyncRendezvousProtocol(Protocol):
    """Rendezvous-with-retry logically synchronous delivery."""

    name = "sync-rendezvous"
    protocol_class = "general"

    def __init__(self, retry_low: float = 1.0, retry_high: float = 8.0, seed: int = 0):
        if not 0 < retry_low <= retry_high:
            raise ValueError("need 0 < retry_low <= retry_high")
        self.retry_low = retry_low
        self.retry_high = retry_high
        self._rng = random.Random(seed)
        self._outbox: Deque[Message] = deque()
        self._phase = IDLE
        self._committed_to: Optional[int] = None
        self.nacks_received = 0

    # -- availability ------------------------------------------------------

    def _free(self) -> bool:
        """Free to accept an incoming transfer: no commitment and no own
        transfer between REQ and FIN.  (BACKOFF counts as free -- that is
        what dissolves symmetric retry storms.)"""
        return self._committed_to is None and self._phase in (IDLE, BACKOFF)

    # -- sender side -----------------------------------------------------------

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self._outbox.append(message)
        self._try_request(ctx)

    def _try_request(self, ctx: HostContext) -> None:
        # Only request while fully free: starting a transfer while
        # committed to an incoming one would let that delivery land after
        # our own send, an ordering assertion nothing justifies.
        if self._phase is not IDLE or self._committed_to is not None:
            return
        if not self._outbox:
            return
        self._phase = AWAITING_ACK
        ctx.send_control(self._outbox[0].receiver, (REQ,))

    def _retry_later(self, ctx: HostContext) -> None:
        self._phase = BACKOFF
        delay = self._rng.uniform(self.retry_low, self.retry_high)

        def wake() -> None:
            if self._phase is BACKOFF:
                self._phase = IDLE
                self._try_request(ctx)

        ctx.schedule(delay, wake)

    # -- control handling ----------------------------------------------------

    def on_control(self, ctx: HostContext, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == REQ:
            if self._free():
                self._committed_to = src
                ctx.send_control(src, (ACK,))
            else:
                ctx.send_control(src, (NACK,))
        elif kind == ACK:
            message = self._outbox.popleft()
            self._phase = AWAITING_FIN
            ctx.release(message, tag=None)
        elif kind == NACK:
            self.nacks_received += 1
            self._retry_later(ctx)
        elif kind == FIN:
            self._phase = IDLE
            self._try_request(ctx)
        else:
            raise ValueError("unknown control payload %r" % (payload,))

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Name the rendezvous phase an unreleased message is stuck in."""
        for position, message in enumerate(self._outbox):
            if message.id != message_id:
                continue
            if position > 0:
                return "queued at outbox position %d (one transfer at a time)" % (
                    position,
                )
            if self._phase is AWAITING_ACK:
                return "REQ sent to P%d, awaiting ACK/NACK" % message.receiver
            if self._phase is BACKOFF:
                return "backing off after NACK (%d so far), will retry" % (
                    self.nacks_received,
                )
            if self._committed_to is not None:
                return "deferred while committed to a transfer from P%d" % (
                    self._committed_to,
                )
            return "head of outbox, request not yet issued"
        return None

    # -- payload delivery ------------------------------------------------------

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        if self._committed_to != message.sender:
            raise RuntimeError(
                "payload from %d arrived while committed to %r"
                % (message.sender, self._committed_to)
            )
        ctx.deliver(message)
        self._committed_to = None
        ctx.send_control(message.sender, (FIN,))
        # A request deferred by the commitment can go out now.
        self._try_request(ctx)
