"""The protocol catalogue: one authoritative name -> entry registry.

Every consumer that used to keep its own protocol table -- the profiler
(:mod:`repro.obs.profile`), the model-checker registry
(:mod:`repro.mc.registry`), the ``repro compare`` CLI, the conformance
tests, and the net runtime (:mod:`repro.net`) -- resolves through
:func:`catalogue`, so adding a protocol means adding exactly one entry
here.

Each entry ties together the three things the paper associates with a
protocol: a factory for instances, the protocol *class* it belongs to
(tagless / tagged / general, §5), and the ordering specification it
implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from types import MappingProxyType
from typing import Callable, Dict, Mapping, Tuple

from repro.protocols.base import Protocol, make_factory

#: The paper's protocol classes (§5): what machinery the implementation
#: is allowed to use.
TAGLESS = "tagless"
TAGGED = "tagged"
GENERAL = "general"


@dataclass(frozen=True)
class CatalogueEntry:
    """One catalogued protocol: how to build it and what it claims."""

    name: str
    factory: Callable[[int, int], Protocol]
    protocol_class: str
    spec: "object"  # repro.predicates.spec.Specification
    uses_control_messages: bool  # general protocols pay in control traffic

    def reliable_factory(self, **arq_params) -> Callable[[int, int], Protocol]:
        """This protocol under the ARQ sublayer (for lossy transports)."""
        from repro.protocols.reliable import make_reliable

        return make_reliable(self.factory, **arq_params)


def catalogue() -> Dict[str, CatalogueEntry]:
    """The full name -> entry registry (a fresh dict per call)."""
    from repro.predicates.catalog import (
        ASYNC_ORDERING,
        CAUSAL_ORDERING,
        FIFO_ORDERING,
        LOGICALLY_SYNCHRONOUS,
        TWO_WAY_FLUSH,
        k_weaker_causal_spec,
    )
    from repro.protocols.causal_rst import CausalRstProtocol
    from repro.protocols.causal_ses import CausalSesProtocol
    from repro.protocols.fifo import FifoProtocol
    from repro.protocols.flush import FlushChannelProtocol
    from repro.protocols.k_weaker import KWeakerCausalProtocol
    from repro.protocols.sync_coordinator import SyncCoordinatorProtocol
    from repro.protocols.sync_rendezvous import SyncRendezvousProtocol
    from repro.protocols.tagless import TaglessProtocol

    rows: Tuple[Tuple[str, Callable, str, object, bool], ...] = (
        ("tagless", make_factory(TaglessProtocol), TAGLESS, ASYNC_ORDERING, False),
        ("fifo", make_factory(FifoProtocol), TAGGED, FIFO_ORDERING, False),
        ("flush", make_factory(FlushChannelProtocol), TAGGED, TWO_WAY_FLUSH, False),
        (
            "k-weaker(2)",
            make_factory(KWeakerCausalProtocol, 2),
            TAGGED,
            k_weaker_causal_spec(2),
            False,
        ),
        ("causal-rst", make_factory(CausalRstProtocol), TAGGED, CAUSAL_ORDERING, False),
        ("causal-ses", make_factory(CausalSesProtocol), TAGGED, CAUSAL_ORDERING, False),
        (
            "sync-coord",
            make_factory(SyncCoordinatorProtocol),
            GENERAL,
            LOGICALLY_SYNCHRONOUS,
            True,
        ),
        (
            "sync-rdv",
            make_factory(SyncRendezvousProtocol),
            GENERAL,
            LOGICALLY_SYNCHRONOUS,
            True,
        ),
    )
    return {
        name: CatalogueEntry(
            name=name,
            factory=factory,
            protocol_class=protocol_class,
            spec=spec,
            uses_control_messages=uses_control,
        )
        for name, factory, protocol_class, spec, uses_control in rows
    }


@lru_cache(maxsize=1)
def cached_catalogue() -> "Mapping[str, CatalogueEntry]":
    """The registry built once and shared, behind a read-only view.

    :func:`catalogue` rebuilds its dict (and re-imports the spec
    catalog) on every call, which the CLI used to do several times per
    subcommand.  Entries are immutable, so one shared mapping is safe;
    the proxy keeps a careless consumer from mutating the shared copy.
    """
    return MappingProxyType(catalogue())


def catalogue_entry(name: str) -> CatalogueEntry:
    """One entry by name, with a helpful error on a miss."""
    entries = cached_catalogue()
    if name not in entries:
        raise KeyError(
            "unknown catalogue protocol %r; available: %s"
            % (name, ", ".join(sorted(entries)))
        )
    return entries[name]
