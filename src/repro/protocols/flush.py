"""F-channel flush primitives (Ahuja), per channel, by tagging only.

A channel carries four kinds of sends:

- *ordinary*       -- unconstrained relative to other ordinary messages;
- *forward-flush*  -- delivered only after everything sent before it;
- *backward-flush* -- delivered before anything sent after it;
- *two-way-flush*  -- both (a full channel barrier).

The flush kind is derived from the message colour via ``flush_colors``
(default: ``"red"`` means two-way flush), so the same workloads drive both
this protocol and the colour-guarded flush specifications.

Tags are three small integers; there are no control messages -- the
predicate-graph cycles of the flush specifications have order 1, and this
protocol is the constructive witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext

ORDINARY = "ordinary"
FORWARD = "forward"
BACKWARD = "backward"
TWO_WAY = "two_way"

_KINDS = (ORDINARY, FORWARD, BACKWARD, TWO_WAY)


@dataclass
class _SenderChannel:
    next_seq: int = 0
    last_backward_barrier: int = -1  # seq of last backward/two-way flush


@dataclass
class _ReceiverChannel:
    delivered_count: int = 0
    delivered_seqs: set = field(default_factory=set)
    held: List[Tuple[Message, int, str, int]] = field(default_factory=list)


class FlushChannelProtocol(Protocol):
    """Per-channel flush ordering via (seq, kind, barrier) tags."""

    name = "flush-channel"
    protocol_class = "tagged"

    def __init__(self, flush_colors: Optional[Dict[str, str]] = None):
        self._flush_colors = dict(flush_colors or {"red": TWO_WAY})
        for kind in self._flush_colors.values():
            if kind not in _KINDS:
                raise ValueError("unknown flush kind %r" % kind)
        self._out: Dict[int, _SenderChannel] = {}
        self._in: Dict[int, _ReceiverChannel] = {}

    def kind_of(self, message: Message) -> str:
        """The flush kind this message's colour maps to."""
        if message.color is None:
            return ORDINARY
        return self._flush_colors.get(message.color, ORDINARY)

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        channel = self._out.setdefault(message.receiver, _SenderChannel())
        kind = self.kind_of(message)
        seq = channel.next_seq
        channel.next_seq += 1
        barrier = channel.last_backward_barrier
        if kind in (BACKWARD, TWO_WAY):
            channel.last_backward_barrier = seq
        ctx.release(message, tag=(seq, kind, barrier))

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        seq, kind, barrier = tag
        channel = self._in.setdefault(message.sender, _ReceiverChannel())
        channel.held.append((message, seq, kind, barrier))
        self._drain(ctx, channel)

    def _deliverable(
        self, channel: _ReceiverChannel, seq: int, kind: str, barrier: int
    ) -> bool:
        # Every message respects the last backward barrier before it.
        if barrier >= 0 and barrier not in channel.delivered_seqs:
            return False
        # Forward-ish flushes wait for everything sent before them --
        # specifically the messages with smaller sequence numbers (later
        # ordinary messages may already have overtaken and been delivered,
        # so a bare count is not enough).
        if kind in (FORWARD, TWO_WAY):
            delivered_before = sum(
                1 for s in channel.delivered_seqs if s < seq
            )
            if delivered_before < seq:
                return False
        return True

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Name the flush constraint a held message is waiting behind."""
        for sender, channel in self._in.items():
            for message, seq, kind, barrier in channel.held:
                if message.id != message_id:
                    continue
                if barrier >= 0 and barrier not in channel.delivered_seqs:
                    return (
                        "%s seq %d from P%d waiting for backward barrier seq %d"
                        % (kind, seq, sender, barrier)
                    )
                if kind in (FORWARD, TWO_WAY):
                    missing = seq - sum(
                        1 for s in channel.delivered_seqs if s < seq
                    )
                    return (
                        "%s seq %d from P%d waiting for %d earlier message(s)"
                        % (kind, seq, sender, missing)
                    )
                return None
        return None

    def _drain(self, ctx: HostContext, channel: _ReceiverChannel) -> None:
        progress = True
        while progress:
            progress = False
            for index, (message, seq, kind, barrier) in enumerate(channel.held):
                if self._deliverable(channel, seq, kind, barrier):
                    del channel.held[index]
                    channel.delivered_count += 1
                    channel.delivered_seqs.add(seq)
                    ctx.deliver(message)
                    progress = True
                    break
