"""Causal ordering by matrix tagging (Raynal, Schiper & Toueg 1991).

Each process ``Pi`` maintains an ``n x n`` matrix ``SENT`` where
``SENT[j][k]`` is ``Pi``'s knowledge of how many messages ``Pj`` has sent
to ``Pk``, and a vector ``DELIV`` where ``DELIV[k]`` counts messages from
``Pk`` delivered locally.  A message from ``Pi`` carries the matrix as its
tag; the receiver ``Pj`` delays delivery until
``DELIV[k] >= tag[k][j]`` for every ``k`` -- i.e. until every message the
sender knew to be destined to ``Pj`` has been delivered.

The tag is pure piggybacked knowledge: no control messages, exactly the
paper's *tagged* class.  (It is also the protocol the paper's related-work
section uses to pose the "would deeper matrices restrict ordering
further?" question that Theorem 1 answers negatively.)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext


class CausalRstProtocol(Protocol):
    """The RST matrix protocol for point-to-point causal delivery."""

    name = "causal-rst"
    protocol_class = "tagged"

    def __init__(self) -> None:
        self._sent: Optional[List[List[int]]] = None
        self._delivered: Optional[List[int]] = None
        self._pending: List[Tuple[Message, List[List[int]]]] = []
        self._me: Optional[int] = None

    def _ensure_state(self, ctx: HostContext) -> None:
        if self._sent is None:
            n = ctx.n_processes
            self._sent = [[0] * n for _ in range(n)]
            self._delivered = [0] * n
        self._me = ctx.process_id

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        self._ensure_state(ctx)
        assert self._sent is not None
        tag = [row[:] for row in self._sent]
        # Tag first, then count this message: the tag describes strictly
        # earlier traffic, which also yields FIFO per channel.
        self._sent[ctx.process_id][message.receiver] += 1
        ctx.release(message, tag=tag)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        self._ensure_state(ctx)
        matrix = [list(row) for row in tag]
        self._pending.append((message, matrix))
        self._drain(ctx)

    def _deliverable(self, ctx: HostContext, matrix: List[List[int]]) -> bool:
        assert self._delivered is not None
        me = ctx.process_id
        return all(
            self._delivered[k] >= matrix[k][me] for k in range(ctx.n_processes)
        )

    def _drain(self, ctx: HostContext) -> None:
        assert self._sent is not None and self._delivered is not None
        progress = True
        while progress:
            progress = False
            for index, (message, matrix) in enumerate(self._pending):
                if self._deliverable(ctx, matrix):
                    del self._pending[index]
                    self._delivered[message.sender] += 1
                    n = ctx.n_processes
                    for j in range(n):
                        for k in range(n):
                            if matrix[j][k] > self._sent[j][k]:
                                self._sent[j][k] = matrix[j][k]
                    # Account for the delivered message itself.
                    me = ctx.process_id
                    if matrix[message.sender][me] + 1 > self._sent[message.sender][me]:
                        self._sent[message.sender][me] = matrix[message.sender][me] + 1
                    ctx.deliver(message)
                    progress = True
                    break

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Name the unsatisfied matrix constraints a buffered message
        waits on (``DELIV[k] < SENT[k][me]`` entries of its tag)."""
        if self._delivered is None or self._me is None:
            return None
        for message, matrix in self._pending:
            if message.id != message_id:
                continue
            gaps = [
                "%d more from P%d (have %d, tag needs %d)"
                % (matrix[k][self._me] - self._delivered[k], k,
                   self._delivered[k], matrix[k][self._me])
                for k in range(len(self._delivered))
                if self._delivered[k] < matrix[k][self._me]
            ]
            return "buffered awaiting " + "; ".join(gaps) if gaps else None
        return None
