"""The "do nothing" protocol: enable every pending event immediately.

Its run set is exactly ``X_async`` -- the ground set -- which is why a
specification is tagless-implementable iff it contains ``X_async``
(Theorem 1.3).
"""

from __future__ import annotations

from typing import Any

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext


class TaglessProtocol(Protocol):
    """Release on invoke, deliver on receive, no tags, no control traffic."""

    name = "tagless"
    protocol_class = "tagless"

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        ctx.release(message, tag=None)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        ctx.deliver(message)
