"""The protocol interface: an inhibitory layer between user and network.

The paper's protocols control only the send event ``x.s`` (after the
invoke ``x.s*``) and the delivery ``x.r`` (after the receive ``x.r*``).
Correspondingly, a protocol here reacts to ``on_invoke`` by eventually
calling ``ctx.release`` and to ``on_user_message`` by eventually calling
``ctx.deliver``; *general* protocols may additionally exchange control
messages.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.events import Message
from repro.simulation.host import HostContext


class Protocol:
    """Base protocol: subclass and override the event hooks."""

    name = "protocol"
    protocol_class = "tagless"  # "tagless" | "tagged" | "general"

    def on_start(self, ctx: HostContext) -> None:
        """Called once before any traffic (e.g. to seed a coordinator)."""

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        """The user requested a send; release it now or later."""
        raise NotImplementedError

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        """A user message arrived; deliver it now or later."""
        raise NotImplementedError

    def on_control(self, ctx: HostContext, src: int, payload: Any) -> None:
        """A control message arrived (general protocols only)."""
        raise NotImplementedError(
            "%s received an unexpected control message" % type(self).__name__
        )

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Why this instance is withholding ``message_id``, or ``None``.

        An observability hook (see :mod:`repro.obs.watchdog`): protocols
        holding a message back -- an inhibited send or a buffered
        delivery -- may describe the condition they are waiting on
        ("waiting for seq 3 from P0").  The default knows nothing.
        """
        return None


def make_factory(protocol_cls, *args, **kwargs) -> Callable[[int, int], Protocol]:
    """A factory producing one independent instance per process.

    Extra arguments are forwarded to the constructor, which must accept
    them before the implicit ``process_id``/``n_processes`` the simulation
    supplies via hooks (protocols learn their identity from ``ctx``).
    """

    def factory(process_id: int, n_processes: int) -> Protocol:
        return protocol_cls(*args, **kwargs)

    return factory
