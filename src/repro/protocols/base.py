"""The protocol interface: an inhibitory layer between user and network.

The paper's protocols control only the send event ``x.s`` (after the
invoke ``x.s*``) and the delivery ``x.r`` (after the receive ``x.r*``).
Correspondingly, a protocol here reacts to ``on_invoke`` by eventually
calling ``ctx.release`` and to ``on_user_message`` by eventually calling
``ctx.deliver``; *general* protocols may additionally exchange control
messages.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional, Tuple

from repro.events import Message
from repro.simulation.host import HostContext


class Protocol:
    """Base protocol: subclass and override the event hooks."""

    name = "protocol"
    protocol_class = "tagless"  # "tagless" | "tagged" | "general"
    #: Whether the host may hand repeated arrivals of the same user message
    #: to :meth:`on_duplicate` instead of raising ``ProtocolError``.  Only a
    #: protocol that deduplicates (e.g. the ARQ sublayer of
    #: :mod:`repro.protocols.reliable`) should opt in.
    accepts_duplicates = False
    #: Attribute names excluded from :meth:`snapshot` -- state a crash
    #: destroys (timers, caches).  ``restore`` drops them; recreate what is
    #: needed in :meth:`on_restart`.
    volatile_attrs: Tuple[str, ...] = ()
    #: Declares that every timer this protocol schedules is pure loss
    #: recovery: in an execution where no packet is destroyed, firing (or
    #: never firing) its timers cannot change the user-visible run.  The
    #: model checker relies on this to keep retransmission timers out of
    #: the transition tree until the adversary actually drops a packet --
    #: without it, every armed timer is an independent branching point.
    #: Only declare it when it genuinely holds (for the ARQ sublayer it
    #: does: receive-side sequence-number dedup makes redundant
    #: retransmissions invisible above the sublayer).
    timers_pure_recovery = False

    def on_start(self, ctx: HostContext) -> None:
        """Called once before any traffic (e.g. to seed a coordinator)."""

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        """The user requested a send; release it now or later."""
        raise NotImplementedError

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        """A user message arrived; deliver it now or later."""
        raise NotImplementedError

    def on_control(self, ctx: HostContext, src: int, payload: Any) -> None:
        """A control message arrived (general protocols only)."""
        raise NotImplementedError(
            "%s received an unexpected control message" % type(self).__name__
        )

    def on_duplicate(self, ctx: HostContext, message: Message, tag: Any) -> None:
        """A second copy of an already-received user message arrived.

        Only called when :attr:`accepts_duplicates` is true (the host
        raises otherwise): an unreliable network may duplicate packets or
        deliver a retransmission after the original.  The duplicate was
        *not* recorded as a receive event -- the paper's ``x.r*`` happened
        once -- so the protocol must not deliver it again; typical
        reaction is to refresh an acknowledgment.
        """
        raise NotImplementedError(
            "%s opted into duplicates but does not handle them"
            % type(self).__name__
        )

    # -- crash-restart hooks (see repro.faults) -----------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The protocol's durable state, captured at a crash point.

        The default deep-copies every attribute except
        :attr:`volatile_attrs` -- checkpoint-at-crash semantics; whatever a
        subclass declares volatile (armed timers, caches) is lost, which
        is the "volatile loss" the fault injector models.
        """
        return copy.deepcopy(
            {
                name: value
                for name, value in self.__dict__.items()
                if name not in self.volatile_attrs
            }
        )

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild the instance from a :meth:`snapshot` after a restart.

        Volatile attributes are *removed* (they did not survive the
        crash); :meth:`on_restart` runs afterwards and may recreate them.
        """
        for name in self.volatile_attrs:
            self.__dict__.pop(name, None)
        self.__dict__.update(copy.deepcopy(state))

    def on_restart(self, ctx: HostContext) -> None:
        """Called after :meth:`restore` when the process rejoins the run
        (e.g. to re-arm retransmission timers).  The default does nothing.
        """

    def on_link_restored(self, ctx: HostContext, dst: int) -> None:
        """The runtime re-established a broken link to ``dst``.

        Unlike :meth:`on_restart` this process never died -- only the
        channel did, taking any in-flight packets with it.  A recovery
        sublayer should resend whatever ``dst`` has not acknowledged and
        reset any per-peer give-up counters (the peer is provably
        reachable again).  The default does nothing: a protocol that
        assumes reliable channels has nothing to repair -- stack
        :class:`~repro.protocols.reliable.ReliableProtocol` under it if
        its channels can actually break.
        """

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Why this instance is withholding ``message_id``, or ``None``.

        An observability hook (see :mod:`repro.obs.watchdog`): protocols
        holding a message back -- an inhibited send or a buffered
        delivery -- may describe the condition they are waiting on
        ("waiting for seq 3 from P0").  The default knows nothing.
        """
        return None


def make_factory(protocol_cls, *args, **kwargs) -> Callable[[int, int], Protocol]:
    """A factory producing one independent instance per process.

    Extra arguments are forwarded to the constructor, which must accept
    them before the implicit ``process_id``/``n_processes`` the simulation
    supplies via hooks (protocols learn their identity from ``ctx``).
    """

    def factory(process_id: int, n_processes: int) -> Protocol:
        return protocol_cls(*args, **kwargs)

    return factory
