"""FIFO channels via per-channel sequence numbers.

The FIFO forbidden predicate (same sender, same receiver,
``x.s ▷ y.s ∧ y.r ▷ x.r``) has an order-1 cycle, so tagging suffices: the
tag is a single integer per message.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.events import Message
from repro.protocols.base import Protocol
from repro.simulation.host import HostContext


class FifoProtocol(Protocol):
    """Deliver each channel's messages in send order."""

    name = "fifo"
    protocol_class = "tagged"

    def __init__(self) -> None:
        self._next_out: Dict[int, int] = {}  # receiver -> next seq to assign
        self._next_in: Dict[int, int] = {}  # sender -> next seq to deliver
        self._held: Dict[Tuple[int, int], Message] = {}  # (sender, seq) -> msg

    def on_invoke(self, ctx: HostContext, message: Message) -> None:
        seq = self._next_out.get(message.receiver, 0)
        self._next_out[message.receiver] = seq + 1
        ctx.release(message, tag=seq)

    def on_user_message(self, ctx: HostContext, message: Message, tag: Any) -> None:
        seq = int(tag)
        self._held[(message.sender, seq)] = message
        self._drain(ctx, message.sender)

    def _drain(self, ctx: HostContext, sender: int) -> None:
        expected = self._next_in.get(sender, 0)
        while (sender, expected) in self._held:
            ctx.deliver(self._held.pop((sender, expected)))
            expected += 1
        self._next_in[sender] = expected

    def blocking_reason(self, message_id: str) -> Optional[str]:
        """Name the sequence-number gap a held message is waiting behind."""
        for (sender, seq), message in self._held.items():
            if message.id == message_id:
                return "holding seq %d from P%d, waiting for seq %d" % (
                    seq,
                    sender,
                    self._next_in.get(sender, 0),
                )
        return None
