"""A1 -- ablations of the reproduction's design choices (DESIGN.md §5).

Four dials, each regenerated as a curve:

1. the k dial of k-weaker causal ordering: delivery delays fall as the
   guarantee relaxes (k = 0 is causal ordering, large k approaches the
   do-nothing protocol);
2. tag garbage collection: pruning known-delivered messages from the
   k-weaker tags bounds tag growth;
3. matrix vs vector causal tags (RST vs SES) as the process count grows;
4. the rendezvous retry backoff: short backoffs burn control messages on
   refusals, long backoffs trade them for latency.
"""

import pytest

from repro.protocols import (
    CausalRstProtocol,
    CausalSesProtocol,
    KWeakerCausalProtocol,
    SyncRendezvousProtocol,
)
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency, broadcast_storm, random_traffic, run_simulation
from repro.verification import check_simulation
from repro.predicates.catalog import k_weaker_causal_spec

from conftest import format_table, write_result

LATENCY = UniformLatency(low=1.0, high=50.0)
SEEDS = range(4)


def k_dial_rows():
    rows = []
    for k in (0, 1, 2, 4, 8):
        delayed = 0
        tags = 0.0
        ok = True
        for seed in SEEDS:
            result = run_simulation(
                make_factory(KWeakerCausalProtocol, k),
                broadcast_storm(4, rounds=8, seed=seed),
                seed=seed,
                latency=LATENCY,
            )
            delayed += result.stats.delayed_deliveries
            tags += result.stats.mean_tag_bytes
            ok = ok and check_simulation(result, k_weaker_causal_spec(k)).ok
        count = len(list(SEEDS))
        rows.append((k, "yes" if ok else "NO", delayed // count, "%.0f" % (tags / count)))
    return rows


def test_a1_k_dial(benchmark):
    rows = benchmark(k_dial_rows)
    table = format_table(
        ["k", "spec ok", "delayed deliveries/run", "tag bytes/msg"], rows
    )
    write_result("a1_k_weaker_dial", table)
    delays = [row[2] for row in rows]
    assert all(row[1] == "yes" for row in rows)
    assert delays[0] >= delays[-1]
    assert delays[0] > 0 and delays[-1] == 0


def gc_rows():
    rows = []
    for prune in (True, False):
        tags = max_tags = 0.0
        for seed in SEEDS:
            result = run_simulation(
                make_factory(KWeakerCausalProtocol, 1, prune),
                random_traffic(4, 60, seed=seed),
                seed=seed,
                latency=LATENCY,
            )
            tags += result.stats.mean_tag_bytes
            max_tags = max(max_tags, result.stats.max_tag_bytes)
        count = len(list(SEEDS))
        rows.append(
            (
                "with GC" if prune else "without GC",
                "%.0f" % (tags / count),
                "%.0f" % max_tags,
            )
        )
    return rows


def test_a1_tag_gc(benchmark):
    rows = benchmark(gc_rows)
    table = format_table(["variant", "mean tag bytes", "max tag bytes"], rows)
    write_result("a1_tag_gc", table)
    with_gc = float(rows[0][1])
    without_gc = float(rows[1][1])
    assert with_gc < without_gc


def matrix_vs_vector_rows():
    rows = []
    for n in (3, 5, 8):
        rst = ses = 0.0
        for seed in SEEDS:
            workload = random_traffic(n, 10 * n, seed=seed)
            rst += run_simulation(
                make_factory(CausalRstProtocol), workload, seed=seed
            ).stats.mean_tag_bytes
            ses += run_simulation(
                make_factory(CausalSesProtocol), workload, seed=seed
            ).stats.mean_tag_bytes
        count = len(list(SEEDS))
        rows.append((n, "%.0f" % (rst / count), "%.0f" % (ses / count)))
    return rows


def test_a1_matrix_vs_vector_tags(benchmark):
    rows = benchmark(matrix_vs_vector_rows)
    table = format_table(
        ["processes", "RST matrix bytes/msg", "SES bytes/msg"], rows
    )
    write_result("a1_matrix_vs_vector", table)
    # The matrix grows quadratically with n, the vectors roughly linearly:
    # SES may cost slightly more at tiny n (per-entry overhead) but wins
    # as n grows, and the gap widens -- a crossover, not a uniform win.
    gaps = [float(r[1]) - float(r[2]) for r in rows]
    assert gaps[-1] > 0
    assert gaps[-1] > gaps[0]


def minimality_rows():
    """The generated engine's exact mode delays only what its predicate
    needs; enforcing full causal order for a FIFO-strength spec delays
    (and orders) much more."""
    from repro.predicates.catalog import FIFO, FIFO_ORDERING
    from repro.protocols import GeneratedTaggedProtocol
    from repro.runs.metrics import run_metrics

    rows = []
    entries = [
        ("generated FIFO (exact)", make_factory(GeneratedTaggedProtocol, [FIFO])),
        ("causal-rst (blanket CO)", make_factory(CausalRstProtocol)),
    ]
    for name, factory in entries:
        delayed = 0
        concurrency = 0.0
        ok = True
        for seed in SEEDS:
            result = run_simulation(
                factory,
                random_traffic(4, 30, seed=seed),
                seed=seed,
                latency=LATENCY,
            )
            from repro.verification import check_simulation as check

            ok = ok and check(result, FIFO_ORDERING).ok
            delayed += result.stats.delayed_deliveries
            concurrency += run_metrics(result.user_run).concurrency_ratio
        count = len(list(SEEDS))
        rows.append(
            (name, "yes" if ok else "NO", delayed // count,
             "%.3f" % (concurrency / count))
        )
    return rows


def test_a1_minimality_of_generated_protocol(benchmark):
    rows = benchmark(minimality_rows)
    table = format_table(
        ["protocol", "fifo ok", "delayed/run", "concurrency kept"], rows
    )
    write_result("a1_generated_minimality", table)
    generated, blanket = rows
    assert generated[1] == blanket[1] == "yes"
    # The FIFO-specific engine inhibits no more than blanket causal order.
    # (Concurrency ratios are reported as data: delivery placement
    # reshuffles the pair counts, so they are close rather than ordered.)
    assert generated[2] <= blanket[2]


def backoff_rows():
    rows = []
    for low, high in ((0.5, 1.0), (1.0, 8.0), (8.0, 30.0)):
        control = 0
        e2e = 0.0
        for seed in SEEDS:
            result = run_simulation(
                make_factory(SyncRendezvousProtocol, low, high),
                random_traffic(4, 30, seed=seed),
                seed=seed,
                latency=LATENCY,
            )
            assert result.delivered_all
            control += result.stats.control_messages
            e2e += result.stats.mean_end_to_end_latency
        count = len(list(SEEDS))
        rows.append(
            (
                "%.1f-%.1f" % (low, high),
                control // count,
                "%.0f" % (e2e / count),
            )
        )
    return rows


def test_a1_rendezvous_backoff(benchmark):
    rows = benchmark(backoff_rows)
    table = format_table(
        ["retry backoff", "ctrl msgs/run", "invoke->deliver latency"], rows
    )
    write_result("a1_rendezvous_backoff", table)
    controls = [row[1] for row in rows]
    assert controls[0] > controls[-1]  # shorter backoff, more refusals
