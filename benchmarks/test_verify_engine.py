"""Verification engine benchmark: incremental monitoring vs batch re-checks.

Part 1 times a single growing trace two ways: the pre-engine strategy of
re-checking the whole prefix from scratch after every append (what the
model checker used to do per explored state) against one incremental
:class:`~repro.verification.engine.SpecMonitor` consuming each record
once.

Part 2 runs the model checker end-to-end on the ``mc_reduction``
configurations twice -- once with the shared incremental monitor the
explorer now carries, once with a full-replay monitor emulating the old
per-state re-check -- asserting identical schedule and violation counts
and recording the verification-time drop plus states/sec.

``VERIFY_ENGINE_SMOKE=1`` shrinks the workloads for CI smoke runs.
Results land in ``benchmarks/results/verify_engine.txt``.
"""

from __future__ import annotations

import os
from time import perf_counter

from conftest import format_table, write_result

import repro.mc.explorer as explorer_module
from repro.mc import ModelChecker, resolve_protocol
from repro.predicates.catalog import (
    ASYNC_ORDERING,
    CAUSAL_ORDERING,
    FIFO_ORDERING,
)
from repro.protocols import TaglessProtocol
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency, random_traffic, run_simulation
from repro.simulation.trace import Trace
from repro.simulation.workloads import SendRequest, Workload
from repro.verification.engine import SpecMonitor, monitor_trace

SMOKE = bool(os.environ.get("VERIFY_ENGINE_SMOKE"))

TRACE_SIZES = (10, 20) if SMOKE else (25, 50, 100, 200)

FAN_IN_3 = Workload(
    name="fan-in-3",
    n_processes=3,
    requests=(
        SendRequest(time=0.0, sender=0, receiver=2),
        SendRequest(time=1.0, sender=1, receiver=2),
        SendRequest(time=2.0, sender=0, receiver=2),
    ),
)

RELAY_3 = Workload(
    name="relay-3",
    n_processes=3,
    requests=(
        SendRequest(time=0.0, sender=0, receiver=1),
        SendRequest(time=1.0, sender=1, receiver=2),
        SendRequest(time=2.0, sender=0, receiver=2),
    ),
)

RELAY_5 = Workload(
    name="relay-5",
    n_processes=5,
    requests=(
        SendRequest(time=0.0, sender=0, receiver=1),
        SendRequest(time=1.0, sender=1, receiver=2),
        SendRequest(time=2.0, sender=2, receiver=3),
        SendRequest(time=3.0, sender=0, receiver=4),
        SendRequest(time=4.0, sender=3, receiver=4),
    ),
)

MC_CASES = [
    ("tagless", FAN_IN_3, ASYNC_ORDERING),
    ("fifo", FAN_IN_3, FIFO_ORDERING),
    ("causal-rst", RELAY_3, CAUSAL_ORDERING),
]
if not SMOKE:
    MC_CASES += [
        ("fifo", RELAY_5, FIFO_ORDERING),
        ("causal-rst", RELAY_5, CAUSAL_ORDERING),
    ]


def _seed_first_violation(trace, specification):
    """The pre-engine ``first_violation``: rebuild a :class:`UserRun`
    event by event and brute-enumerate assignments using the newest
    event.  Vendored verbatim (minus probes) so the benchmark measures
    the strategy this engine replaced."""
    from repro.events import Event
    from repro.predicates.evaluation import satisfying_assignments
    from repro.runs.user_run import UserRun
    from repro.verification.engine import FirstViolation

    def new_instance(run, predicate, new_event):
        for assignment in satisfying_assignments(run, predicate):
            used = {
                Event(assignment[term.variable].id, term.kind)
                for conjunct in predicate.conjuncts
                for term in (conjunct.left, conjunct.right)
            }
            if new_event in used:
                return assignment
        return None

    run = UserRun()
    registered = set()
    messages = {m.id: m for m in trace.messages()}
    for record in trace.records():
        event = record.event
        if event.kind.name not in ("SEND", "DELIVER"):
            continue
        message = messages[event.message_id]
        if message.id not in registered:
            run.add_message(message, with_events=False)
            registered.add(message.id)
        prior = [
            e
            for e in run.events_of_process(record.process)
            if run.has_event(e)
        ]
        run.add_event(event)
        for earlier in prior:
            if earlier != event:
                run.order(earlier, event)
        for predicate in specification.members_for(run):
            assignment = new_instance(run, predicate, event)
            if assignment is not None:
                return FirstViolation(
                    time=record.time,
                    event=event,
                    predicate_name=predicate.name or "anonymous",
                    assignment={v: m.id for v, m in assignment.items()},
                )
    return None


class SeedReplayMonitor(SpecMonitor):
    """The old explorer's verification strategy: every ``advance``
    replays the entire trace through the brute-force seed algorithm.
    Snapshots are trivially correct because no state survives between
    calls."""

    def advance(self, trace):
        self.stats.searches += 1
        return _seed_first_violation(trace, self.spec)


def _adversarial_trace(count: int, seed: int) -> Trace:
    return run_simulation(
        make_factory(TaglessProtocol),
        random_traffic(3, count, seed=seed),
        seed=seed,
        latency=UniformLatency(low=1.0, high=60.0),
    ).trace


def _grow(trace: Trace, consume) -> float:
    """Re-append ``trace``'s records one by one, calling ``consume`` on
    the growing copy after each; the elapsed wall-clock."""
    started = perf_counter()
    growing = Trace(trace.n_processes)
    for message in trace.messages():
        growing.register_message(message)
    for record in trace.records():
        growing.record(record.time, record.process, record.event)
        consume(growing)
    return perf_counter() - started


def _part1_growing_traces():
    rows = []
    for count in TRACE_SIZES:
        trace = _adversarial_trace(count, seed=count)

        batch_seconds = _grow(
            trace, lambda growing: monitor_trace(growing, CAUSAL_ORDERING)
        )

        monitor = SpecMonitor(CAUSAL_ORDERING)
        incremental_seconds = _grow(
            trace,
            lambda growing: monitor.violation is None
            and monitor.advance(growing),
        )

        speedup = batch_seconds / max(incremental_seconds, 1e-9)
        rows.append(
            [
                trace.record_count,
                "%.4f" % batch_seconds,
                "%.4f" % incremental_seconds,
                "%.1fx" % speedup,
            ]
        )
        # The point of the engine: the per-append re-check pays the full
        # prefix again and again; the incremental pass does not.  The
        # threshold sits far below the measured 50-500x so scheduling
        # noise on a loaded host cannot flip the verdict.
        if trace.record_count >= 100:
            assert speedup >= 5.0, rows[-1]
    return format_table(
        ["records", "per-append re-check (s)", "incremental (s)", "speedup"],
        rows,
    )


def _check(protocol: str, workload: Workload, spec):
    checker = ModelChecker(
        resolve_protocol(protocol),
        workload,
        spec,
        max_schedules=None,
        minimize=False,
    )
    started = perf_counter()
    report = checker.run()
    return report, perf_counter() - started


def _part2_model_checker():
    rows = []
    for protocol, workload, spec in MC_CASES:
        report, total = _check(protocol, workload, spec)

        original = explorer_module.SpecMonitor
        explorer_module.SpecMonitor = SeedReplayMonitor
        try:
            replay_report, replay_total = _check(protocol, workload, spec)
        finally:
            explorer_module.SpecMonitor = original

        # Soundness: the incremental monitor explores the same tree and
        # reports the same violations as per-state full replay.
        assert report.schedules_explored == replay_report.schedules_explored
        assert len(report.violations) == len(replay_report.violations)

        drop = replay_report.verify_seconds / max(report.verify_seconds, 1e-9)
        # Generous margin (measured 8-16x) so a loaded CI host stays green.
        if workload is RELAY_5:
            assert drop >= 3.0, (protocol, workload.name, drop)
        rows.append(
            [
                protocol,
                workload.name,
                report.schedules_explored,
                report.transitions,
                "%.4f" % report.verify_seconds,
                "%.4f" % replay_report.verify_seconds,
                "%.1fx" % drop,
                "%.0f" % (report.schedules_explored / max(total, 1e-9)),
                "%.0f"
                % (replay_report.schedules_explored / max(replay_total, 1e-9)),
            ]
        )
    return format_table(
        [
            "protocol",
            "workload",
            "schedules",
            "transitions",
            "verify (s)",
            "seed verify (s)",
            "drop",
            "states/s",
            "seed states/s",
        ],
        rows,
    )


def test_verify_engine_benchmark():
    part1 = _part1_growing_traces()
    part2 = _part2_model_checker()
    text = (
        "Incremental verification engine\n"
        "===============================\n\n"
        "Per-append full re-check vs one incremental monitor pass\n"
        "(CAUSAL_ORDERING over tagless traces, adversarial latency):\n\n"
        + part1
        + "\nModel checker end-to-end, incremental monitor vs per-state\n"
        "full replay (same schedule/violation counts in both modes;\n"
        "'verify' is wall-clock inside the monitor):\n\n"
        + part2
    )
    write_result("verify_engine", text)
