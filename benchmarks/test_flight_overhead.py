"""Flight-recorder overhead on the loopback-TCP runtime.

The observability plane (flight recorder ring + vector-clock piggyback +
metrics registry + watchdog) defaults to *on* in every
:class:`~repro.net.host.NetHost`.  This experiment runs the same fifo
workload with the plane on and off (``observability=False``) and records
the throughput and latency cost.  The acceptance bar from the issue: at
the default ring size the recorder must cost < 10% of loopback
throughput.

Set ``NET_THROUGHPUT_SMOKE=1`` to shrink the workload for CI.
"""

from __future__ import annotations

import os
import time

from conftest import format_table, write_result

from repro.net import run_cluster_sync
from repro.protocols import catalogue

SMOKE = bool(os.environ.get("NET_THROUGHPUT_SMOKE"))

N_PROCESSES = 3
RATE = 200.0 if SMOKE else 1500.0
DURATION = 0.5 if SMOKE else 2.0
TIME_SCALE = 0.001
SEEDS = (0,) if SMOKE else (0, 1)

#: The issue's acceptance bar: < 10% throughput regression.
MAX_REGRESSION = 0.10


def _run(observability, seed):
    entry = catalogue()["fifo"]
    report = run_cluster_sync(
        entry.factory,
        N_PROCESSES,
        protocol_name="fifo",
        rate=RATE,
        duration=DURATION,
        seed=seed,
        time_scale=TIME_SCALE,
        quiesce_timeout=60.0,
        run_id="obs-%s-%d" % ("on" if observability else "off", seed),
        observability=observability,
    )
    assert report.quiesced, report.render()
    assert not report.errors, report.render()
    assert report.delivered >= report.invoked == report.requested
    return report


def _mean(values):
    return sum(values) / len(values)


def test_flight_recorder_overhead_table():
    measured = {}
    rows = []
    for observability in (False, True):
        throughput, p99 = [], []
        for seed in SEEDS:
            report = _run(observability, seed)
            throughput.append(report.delivered_per_sec)
            p99.append(report.p99_ms)
        measured[observability] = (_mean(throughput), _mean(p99))
        rows.append(
            [
                "on" if observability else "off",
                "%.0f" % _mean(throughput),
                "%.2f" % _mean(p99),
            ]
        )
    off_rate, _ = measured[False]
    on_rate, _ = measured[True]
    regression = max(0.0, (off_rate - on_rate) / off_rate)
    rows.append(["cost", "%.1f%%" % (regression * 100.0), ""])

    table = format_table(["observability", "msgs/s", "p99 (ms)"], rows)
    preamble = (
        "Flight-recorder overhead on loopback TCP (fifo, %d processes).\n"
        "Open loop at %.0f msgs/s for %.1fs x%d seeds, time scale %s\n"
        "s/unit.  'on' is the default NetHost configuration (flight ring\n"
        "at the default capacity, vector-clock piggyback, metrics,\n"
        "watchdog); 'off' passes observability=False.  Acceptance: the\n"
        "plane costs < %.0f%% of delivered throughput.\n"
        "Generated %s.\n\n"
        % (
            N_PROCESSES,
            RATE,
            DURATION,
            len(SEEDS),
            TIME_SCALE,
            MAX_REGRESSION * 100.0,
            time.strftime("%Y-%m-%d"),
        )
    )
    write_result("flight_overhead", preamble + table)

    assert regression < MAX_REGRESSION, (
        "observability costs %.1f%% of throughput (limit %.0f%%): "
        "on=%.0f msgs/s off=%.0f msgs/s"
        % (regression * 100.0, MAX_REGRESSION * 100.0, on_rate, off_rate)
    )
