"""E2 -- Lemma 3: the catalogue of canonical two-variable predicates.

Regenerates the three identities the lemma states, each checked by
exhaustive enumeration of a small universe:

1. the crown family's specification sets all contain X_sync;
2. B1, B2, B3 all denote exactly X_co;
3. the zero-β two-cycles all denote exactly X_async.
"""

import pytest

from repro.core.containment import check_limit_containments, spec_sets_equal
from repro.predicates.catalog import (
    ASYNC_FORMS,
    CAUSAL_FORMS,
    crown,
)
from repro.predicates.spec import Specification

from conftest import format_table, write_result


def _spec(predicate):
    return Specification(name=predicate.name, predicates=(predicate,))


def build_lemma3_table():
    rows = []
    for k in (2, 3):
        report = check_limit_containments(_spec(crown(k)), 2, 2)
        rows.append(
            (
                "crown-%d" % k,
                "Lemma 3.1",
                "X_sync ⊆ X_B",
                "yes" if report.sync_contained else "NO",
            )
        )
    for predicate in CAUSAL_FORMS:
        report = check_limit_containments(_spec(predicate), 2, 2)
        exactly_co = (
            report.co_contained and report.admitted_runs == report.co_runs
        )
        rows.append(
            (predicate.name, "Lemma 3.2", "X_B = X_co", "yes" if exactly_co else "NO")
        )
    for predicate in ASYNC_FORMS:
        report = check_limit_containments(_spec(predicate), 2, 2)
        exactly_async = report.admitted_runs == report.total_runs
        rows.append(
            (
                predicate.name,
                "Lemma 3.3",
                "X_B = X_async",
                "yes" if exactly_async else "NO",
            )
        )
    return rows


def test_e2_regenerate_catalog(benchmark):
    rows = benchmark(build_lemma3_table)
    table = format_table(["predicate", "paper", "identity", "holds"], rows)
    write_result("e2_lemma3_catalog", table)
    assert all(row[-1] == "yes" for row in rows)


def test_e2_causal_forms_pairwise_equal(benchmark):
    benchmark(lambda: None)
    for i in range(len(CAUSAL_FORMS)):
        for j in range(i + 1, len(CAUSAL_FORMS)):
            equal, witness = spec_sets_equal(
                _spec(CAUSAL_FORMS[i]), _spec(CAUSAL_FORMS[j]), 2, 2
            )
            assert equal, witness


def test_e2_enumeration_speed(benchmark):
    def sweep():
        return check_limit_containments(_spec(CAUSAL_FORMS[1]), 2, 2)

    report = benchmark(sweep)
    assert report.total_runs == 14
