"""E4 -- §3.4 / Theorem 1: the limit-set chain X_sync ⊆ X_co ⊆ X_async.

Regenerates the chain as counted data over exhaustive universes of
increasing size, and times limit-set membership on simulated runs.
"""

import pytest

from repro.protocols import CausalRstProtocol
from repro.protocols.base import make_factory
from repro.runs.enumeration import enumerate_universe
from repro.runs.limit_sets import (
    is_logically_synchronous,
    limit_set_memberships,
)
from repro.simulation import random_traffic, run_simulation

from conftest import format_table, write_result


def count_universe(n_processes, n_messages):
    total = async_count = co_count = sync_count = 0
    for run in enumerate_universe(n_processes, n_messages):
        member = limit_set_memberships(run)
        total += 1
        async_count += member["async"]
        co_count += member["co"]
        sync_count += member["sync"]
    return total, async_count, co_count, sync_count


UNIVERSES = [(2, 1), (2, 2), (3, 2), (2, 3)]


def test_e4_regenerate_chain(benchmark):
    benchmark(lambda: count_universe(2, 2))
    rows = []
    for n, m in UNIVERSES:
        total, async_count, co_count, sync_count = count_universe(n, m)
        rows.append((("%dp/%dm" % (n, m)), total, async_count, co_count, sync_count))
        assert total == async_count  # every realizable complete run is async
        assert sync_count <= co_count <= async_count
    table = format_table(
        ["universe", "runs", "|X_async|", "|X_co|", "|X_sync|"], rows
    )
    write_result("e4_limit_set_chain", table)
    # The hierarchy is strict on every non-trivial universe.
    for row in rows[1:]:
        assert row[4] < row[3] < row[2]


def test_e4_strictness_witnesses(benchmark):
    benchmark(lambda: None)
    found_co_only = found_async_only = False
    for run in enumerate_universe(2, 2):
        member = limit_set_memberships(run)
        if member["co"] and not member["sync"]:
            found_co_only = True
        if member["async"] and not member["co"]:
            found_async_only = True
    assert found_co_only and found_async_only


def test_e4_membership_speed(benchmark):
    result = run_simulation(
        make_factory(CausalRstProtocol), random_traffic(4, 40, seed=0), seed=0
    )
    run = result.user_run

    def member():
        return limit_set_memberships(run)

    outcome = benchmark(member)
    assert outcome["co"]


def test_e4_universe_enumeration_speed(benchmark):
    def sweep():
        return count_universe(2, 2)

    total, *_ = benchmark(sweep)
    assert total == 14
