"""Aggregate throughput of the sharded ordering-key runtime.

The acceptance claim of ``repro.net.shard``: partitioning traffic into
per-key lanes across worker OS processes scales the net runtime's
aggregate delivered rate by >= 50x over the single-cluster loopback
baseline (1448 msgs/s for fifo in ``results/net_throughput.txt``),
with live per-shard O(1) lane checking still on, and without cross-key
head-of-line blocking (a stalled key's p99 must not leak into other
keys' p99s).

Two tables are regenerated:

``shard_throughput``
    delivered msgs/s, latency percentiles, and speedup over the 1448
    baseline for 1/2/4/8 shards (same offered load, same key pool);

``shard_hol_isolation``
    per-key p99s for a run where one key is artificially stalled
    300ms -- the stalled key's p99 must carry the stall and every
    other key's must not.

Set ``SHARD_THROUGHPUT_SMOKE=1`` to shrink the workload for CI (the
50x assertion is skipped in smoke mode: a CI container has neither
the cores nor the quiet neighbours the full claim needs).
"""

from __future__ import annotations

import os
import socket

from conftest import format_table, write_result

from repro.net.shard import run_sharded_sync

SMOKE = bool(os.environ.get("SHARD_THROUGHPUT_SMOKE"))


def free_port_base(count):
    """A base port with ``count`` contiguous free ports above it."""
    for base in range(8200, 9300, 16):
        sockets = []
        try:
            for index in range(count):
                sock = socket.socket()
                sock.bind(("127.0.0.1", base + index))
                sockets.append(sock)
            return base
        except OSError:
            continue
        finally:
            for sock in sockets:
                sock.close()
    raise RuntimeError("no contiguous port range free")

#: fifo over loopback TCP, 3 processes (results/net_throughput.txt).
BASELINE_MSGS_PER_SEC = 1448.0
TARGET_SPEEDUP = 50.0

SHARD_COUNTS = (1, 2) if SMOKE else (1, 2, 4, 8)
N_PROCESSES = 4 if SMOKE else 8
KEYS = 16 if SMOKE else 64
RATE = 4_000.0 if SMOKE else 110_000.0
DURATION = 0.5 if SMOKE else 2.0


def _run(n_shards, rate, **overrides):
    options = dict(
        n_processes=N_PROCESSES,
        keys=KEYS,
        port_base=free_port_base(n_shards),
        oracle=False,
    )
    options.update(overrides)
    report = run_sharded_sync(n_shards, rate=rate, duration=DURATION, **options)
    assert report.ok, report.render()
    return report


def test_shard_throughput_table():
    rows = []
    best = 0.0
    for n_shards in SHARD_COUNTS:
        # Offered load scales down for small fleets so single-shard
        # rows measure capacity without drowning one worker's drain.
        rate = RATE * max(1, n_shards) / max(SHARD_COUNTS)
        report = _run(n_shards, rate)
        speedup = report.rate_achieved / BASELINE_MSGS_PER_SEC
        best = max(best, report.rate_achieved)
        rows.append(
            [
                n_shards,
                report.offered,
                report.delivered,
                "%.0f" % report.rate_achieved,
                "%.1fx" % speedup,
                "%.2f" % (report.latencies.percentile(50) * 1000.0),
                "%.2f" % (report.latencies.percentile(99) * 1000.0),
            ]
        )
    table = format_table(
        ["shards", "offered", "delivered", "msgs/s", "vs 1448",
         "p50 (ms)", "p99 (ms)"],
        rows,
    )
    preamble = (
        "Sharded lane runtime: aggregate delivered msgs/s by shard count.\n"
        "%d lane processes, %d ordering keys, fifo lanes with live O(1)\n"
        "per-key checking; open loop %.1fs per row.  Baseline 1448 msgs/s\n"
        "is fifo over loopback TCP (net_throughput.txt).%s\n\n"
        % (
            N_PROCESSES,
            KEYS,
            DURATION,
            "  [SMOKE]" if SMOKE else "",
        )
    )
    write_result("shard_throughput", preamble + table)
    if not SMOKE:
        assert best >= TARGET_SPEEDUP * BASELINE_MSGS_PER_SEC, (
            "aggregate %.0f msgs/s is below the %.0fx target (%.0f)"
            % (best, TARGET_SPEEDUP, TARGET_SPEEDUP * BASELINE_MSGS_PER_SEC)
        )


def test_shard_hol_isolation_table():
    stall_seconds = 0.3
    report = _run(
        2 if SMOKE else 4,
        2_000.0 if SMOKE else 20_000.0,
        stall_key="k0",
        stall_seconds=stall_seconds,
    )
    stalled = report.per_key["k0"]
    others = {
        key: row for key, row in report.per_key.items() if key != "k0"
    }
    rows = [["k0 (stalled)", stalled["delivered"], "%.1f" % stalled["p99_ms"]]]
    worst = max(others, key=lambda key: others[key]["p99_ms"])
    rows.append(
        [
            "worst other (%s of %d)" % (worst, len(others)),
            others[worst]["delivered"],
            "%.1f" % others[worst]["p99_ms"],
        ]
    )
    table = format_table(["key", "delivered", "p99 (ms)"], rows)
    preamble = (
        "No cross-key head-of-line blocking: key k0's deliveries are\n"
        "deferred %.0fms; every other key's p99 must stay unaffected.%s\n\n"
        % (stall_seconds * 1000.0, "  [SMOKE]" if SMOKE else "")
    )
    write_result("shard_hol_isolation", preamble + table)
    assert stalled["p99_ms"] >= stall_seconds * 1000.0 * 0.8
    assert others[worst]["p99_ms"] < stall_seconds * 1000.0 * 0.5
