"""Micro-benchmark: an attached-but-unobserved bus must be (nearly) free.

The observability contract is "zero overhead when disabled": probe sites
guard emissions with ``bus is not None and bus.active``, so a simulation
run with a subscriber-less :class:`repro.obs.Bus` attached must stay
within 5% of the uninstrumented wall-clock.  Timings interleave the two
configurations and compare best-of-N to squeeze out scheduler noise; the
measured ratio is recorded under ``benchmarks/results/``.
"""

from __future__ import annotations

import time

from conftest import format_table, write_result

from repro.obs import Bus
from repro.protocols import CausalRstProtocol
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency, random_traffic, run_simulation

ROUNDS = 7
MAX_OVERHEAD = 0.05

WORKLOAD = random_traffic(4, 250, seed=1)
LATENCY = UniformLatency(low=1.0, high=40.0)


def _time(bus) -> float:
    factory = make_factory(CausalRstProtocol)
    started = time.perf_counter()
    run_simulation(factory, WORKLOAD, seed=1, latency=LATENCY, bus=bus)
    return time.perf_counter() - started


def test_unobserved_bus_overhead_under_five_percent():
    # Warm up both paths (imports, allocator, branch caches).
    _time(None)
    _time(Bus())

    baseline = []
    instrumented = []
    for _ in range(ROUNDS):
        baseline.append(_time(None))
        instrumented.append(_time(Bus()))  # attached, zero subscribers

    best_off = min(baseline)
    best_on = min(instrumented)
    ratio = best_on / best_off

    table = format_table(
        ("configuration", "best of %d (s)" % ROUNDS, "ratio vs. off"),
        [
            ("bus=None (default)", "%.4f" % best_off, "1.000"),
            ("bus attached, no subscribers", "%.4f" % best_on, "%.3f" % ratio),
        ],
    )
    write_result(
        "obs_overhead",
        table
        + "\nworkload: %s, causal-rst, %d rounds; overhead budget: %.0f%%\n"
        % (WORKLOAD.name, ROUNDS, MAX_OVERHEAD * 100),
    )
    assert ratio < 1.0 + MAX_OVERHEAD, (
        "unobserved bus costs %.1f%% (budget %.0f%%)"
        % ((ratio - 1.0) * 100, MAX_OVERHEAD * 100)
    )
