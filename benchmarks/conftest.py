"""Shared helpers for the experiment benchmarks.

Every experiment writes its regenerated table to
``benchmarks/results/<experiment>.txt`` so the artifacts survive the
pytest run (EXPERIMENTS.md references them), and also prints it when
pytest runs with ``-s``.
"""

from __future__ import annotations

import os
from typing import List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text)
    print("\n" + text)
    return path


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with per-column widths."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []

    def format_row(cells):
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines.append(format_row(headers))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rows:
        lines.append(format_row(row))
    return "\n".join(lines) + "\n"
