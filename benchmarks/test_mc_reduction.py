"""MC ablation: how much of the schedule tree DPOR + state caching prune.

Runs the model checker over fixed workloads with pruning off, sleep sets
only, and sleep sets + state cache, asserting that every configuration
reaches the same distinct user-view runs (soundness) while the pruned
configurations explore strictly fewer schedules (the point of DPOR).
Writes the count table to ``benchmarks/results/mc_reduction.txt``.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.mc import ModelChecker, resolve_protocol
from repro.predicates.catalog import ASYNC_ORDERING, CAUSAL_ORDERING, FIFO_ORDERING
from repro.simulation.workloads import SendRequest, Workload

WORKLOADS = {
    "fan-in-3": Workload(
        name="fan-in-3",
        n_processes=3,
        requests=(
            SendRequest(time=0.0, sender=0, receiver=2),
            SendRequest(time=1.0, sender=1, receiver=2),
            SendRequest(time=2.0, sender=0, receiver=2),
        ),
    ),
    "relay-3": Workload(
        name="relay-3",
        n_processes=3,
        requests=(
            SendRequest(time=0.0, sender=0, receiver=1),
            SendRequest(time=1.0, sender=1, receiver=2),
            SendRequest(time=2.0, sender=0, receiver=2),
        ),
    ),
}

CASES = (
    ("tagless", "fan-in-3", ASYNC_ORDERING),
    ("fifo", "fan-in-3", FIFO_ORDERING),
    ("causal-rst", "relay-3", CAUSAL_ORDERING),
)

MODES = (
    ("naive", {"use_sleep_sets": False, "use_state_cache": False}),
    ("sleep", {"use_sleep_sets": True, "use_state_cache": False}),
    ("sleep+state", {"use_sleep_sets": True, "use_state_cache": True}),
)


def explore(protocol, workload, spec, flags):
    checker = ModelChecker(
        resolve_protocol(protocol),
        workload,
        spec,
        collect_runs=True,
        max_schedules=None,
        minimize=False,
        **flags,
    )
    report = checker.run()
    assert report.verified, report.summary()
    return report, checker.complete_runs


def test_pruning_reduces_schedules_without_losing_runs():
    rows = []
    for protocol, workload_name, spec in CASES:
        workload = WORKLOADS[workload_name]
        counts = {}
        runs = {}
        for mode, flags in MODES:
            report, reached = explore(protocol, workload, spec, flags)
            counts[mode] = (
                report.schedules_explored,
                report.replays,
                report.transitions,
            )
            runs[mode] = reached
            rows.append(
                [
                    protocol,
                    workload_name,
                    mode,
                    report.schedules_explored,
                    report.replays,
                    report.transitions,
                    report.distinct_complete_runs,
                ]
            )
        # Soundness: pruning never loses a reachable user-view run.
        assert runs["naive"] == runs["sleep"] == runs["sleep+state"]
        # Reduction: each pruning layer strictly helps on these workloads.
        assert counts["sleep"][0] < counts["naive"][0], protocol
        assert counts["sleep+state"][0] <= counts["sleep"][0], protocol

    table = format_table(
        [
            "protocol",
            "workload",
            "mode",
            "schedules",
            "replays",
            "transitions",
            "distinct runs",
        ],
        rows,
    )
    write_result("mc_reduction", table)
