"""E9 -- the §7 multicast extension (the paper's closing remark,
implemented).

Regenerates, for the broadcast orderings:

- the grouped classification: causal broadcast stays tagged; total-order
  (atomic) broadcast needs control messages (its violation cycle breaks
  at two cross-site deliveries);
- a simulation study mirroring E6: the BSS protocol is causal with
  vector tags and no control traffic but diverges on total order; the
  sequencer protocol is totally ordered with control traffic.
"""

import pytest

from repro.broadcast import (
    ATOMIC_BROADCAST,
    TOTAL_ORDER_VIOLATION,
    CausalBroadcastProtocol,
    SequencerBroadcastProtocol,
    check_total_order,
    classify_broadcast,
    group_broadcasts,
)
from repro.core.classifier import ProtocolClass
from repro.predicates.catalog import CAUSAL_B2, CAUSAL_ORDERING
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency, run_simulation
from repro.verification import check_simulation

from conftest import format_table, write_result

LATENCY = UniformLatency(low=1.0, high=60.0)
SEEDS = range(5)


def test_e9_grouped_classification(benchmark):
    verdict = benchmark(classify_broadcast, TOTAL_ORDER_VIOLATION)
    unicast_causal = classify_broadcast(CAUSAL_B2)
    rows = [
        (
            "causal-broadcast",
            "unicast causal predicate",
            unicast_causal.min_order,
            unicast_causal.protocol_class.value,
        ),
        (
            "atomic-broadcast",
            "grouped total-order predicate",
            verdict.min_order,
            verdict.protocol_class.value,
        ),
    ]
    table = format_table(
        ["ordering", "predicate", "cycle order", "class"], rows
    )
    write_result("e9_broadcast_classification", table)
    assert unicast_causal.protocol_class is ProtocolClass.TAGGED
    assert verdict.protocol_class is ProtocolClass.GENERAL


def run_broadcast_study():
    rows = []
    from repro.broadcast import FifoBroadcastProtocol

    for name, factory in [
        ("fifo-broadcast", make_factory(FifoBroadcastProtocol)),
        ("causal-bss", make_factory(CausalBroadcastProtocol)),
        ("sequencer", make_factory(SequencerBroadcastProtocol)),
    ]:
        causal_ok = True
        live = True
        divergences = 0
        control = 0
        tags = 0.0
        for seed in SEEDS:
            workload = group_broadcasts(4, 10, seed=seed)
            result = run_simulation(factory, workload, seed=seed, latency=LATENCY)
            live = live and result.delivered_all
            causal_ok = causal_ok and check_simulation(result, CAUSAL_ORDERING).safe
            divergences += len(check_total_order(result.user_run))
            control += result.stats.control_messages
            tags += result.stats.mean_tag_bytes
        count = len(list(SEEDS))
        rows.append(
            (
                name,
                "yes" if live else "NO",
                "yes" if causal_ok else "NO",
                divergences,
                control // count,
                "%.0f" % (tags / count),
            )
        )
    return rows


def test_e9_broadcast_study(benchmark):
    rows = benchmark(run_broadcast_study)
    table = format_table(
        [
            "protocol",
            "live",
            "causal",
            "total-order divergences",
            "ctrl msgs/run",
            "tag bytes/msg",
        ],
        rows,
    )
    write_result("e9_broadcast_study", table)
    by_name = {row[0]: row for row in rows}
    assert by_name["causal-bss"][1] == "yes" and by_name["causal-bss"][2] == "yes"
    assert by_name["causal-bss"][3] > 0  # diverges on total order
    assert by_name["causal-bss"][4] == 0  # no control messages
    assert by_name["sequencer"][3] == 0  # totally ordered
    assert by_name["sequencer"][4] > 0  # pays in control messages
    # The ladder: fifo-broadcast is weakest (not even causal), cheapest tags.
    assert by_name["fifo-broadcast"][2] == "NO"
    assert float(by_name["fifo-broadcast"][5]) < float(by_name["causal-bss"][5])


@pytest.mark.parametrize(
    "factory",
    [make_factory(CausalBroadcastProtocol), make_factory(SequencerBroadcastProtocol)],
    ids=["bss", "sequencer"],
)
def test_e9_broadcast_throughput(benchmark, factory):
    workload = group_broadcasts(4, 10, seed=0)

    def simulate():
        return run_simulation(factory, workload, seed=0, latency=LATENCY)

    result = benchmark(simulate)
    assert result.delivered_all
