"""E3 -- the worked examples of §4.2 (Examples 1-3 and Figure 6).

Regenerates, as data:

- Example 1: the predicate graph G_B(V, E) of the five-conjunct predicate;
- Example 2: its (single) cycle and the cycle's predicate B_c;
- Example 3: the β analysis (only x4 is β; order 1) and the Lemma 4
  contraction chain down to the two-vertex canonical form B'.
"""

import pytest

from repro.graphs.beta import beta_vertices, cycle_order
from repro.graphs.cycles import resolved_cycles
from repro.graphs.predicate_graph import PredicateGraph
from repro.graphs.reduction import cycle_to_predicate, reduce_cycle
from repro.predicates.catalog import EXAMPLE_1

from conftest import format_table, write_result


def test_e3_regenerate_examples(benchmark):
    graph = benchmark(PredicateGraph, EXAMPLE_1)
    lines = []
    lines.append("Example 1 predicate: %r" % EXAMPLE_1)
    lines.append("V = %s" % list(graph.vertices))
    lines.append("E = %s" % [(e.tail, e.head) for e in graph.edges])
    lines.append("")

    cycles = resolved_cycles(graph)
    assert len(cycles) == 2  # the 4-cycle of Example 2 plus the x1<->x4 2-cycle
    (cycle,) = [c for c in cycles if c.length == 4]
    lines.append("cycles found: %d" % len(cycles))
    lines.append("Example 2 cycle: %r" % cycle)
    lines.append("B_c = %r" % cycle_to_predicate(cycle))
    lines.append("")

    betas = beta_vertices(cycle)
    lines.append("Example 3 β vertices: %s (order %d)" % (betas, cycle_order(cycle)))
    reduction = reduce_cycle(cycle)
    for step in reduction.steps:
        lines.append("  %r" % step)
    lines.append("reduced cycle: %r" % reduction.reduced)
    lines.append("B' = %r" % cycle_to_predicate(reduction.reduced))

    write_result("e3_worked_examples", "\n".join(lines) + "\n")

    # The paper's stated facts.
    assert set(graph.vertices) == {"x1", "x2", "x3", "x4", "x5"}
    assert len(graph.edges) == 6
    assert cycle.vertices == ("x1", "x2", "x3", "x4")
    assert betas == ["x4"]
    assert cycle_order(cycle) == 1
    assert reduction.reduced.length == 2
    assert reduction.order == 1
    assert "x4" in reduction.reduced.vertices


def test_e3_cycle_enumeration_speed(benchmark):
    graph = PredicateGraph(EXAMPLE_1)
    cycles = benchmark(resolved_cycles, graph)
    assert len(cycles) == 2


def test_e3_reduction_speed(benchmark):
    (cycle,) = [
        c for c in resolved_cycles(PredicateGraph(EXAMPLE_1)) if c.length == 4
    ]
    reduction = benchmark(reduce_cycle, cycle)
    assert reduction.order == 1
