"""Cost of recovery: ARQ overhead as the network degrades.

Runs ``Reliable(FIFO)`` over random traffic at drop rates {0, 0.05,
0.2} (plus 10% duplication at the highest tier) and tabulates the
recovery costs the paper's channel-model assumption hides: wall-clock
per run, retransmissions, goodput (deliveries per transmission
attempt), and delivery latency.  At drop rate 0 the ARQ layer must be
essentially free -- no retransmissions, goodput 1.0 -- which is the
regression this benchmark guards.
"""

from __future__ import annotations

import time

from conftest import format_table, write_result

from repro.faults import FaultPlan
from repro.protocols import FifoProtocol, make_factory, make_reliable
from repro.simulation import UniformLatency, random_traffic, run_simulation

SEEDS = range(5)
MESSAGES = 60
LATENCY = UniformLatency(low=1.0, high=10.0)

TIERS = (
    ("0%", None),
    ("5%", lambda seed: FaultPlan(drop_rate=0.05, seed=seed)),
    ("20%+dup", lambda seed: FaultPlan(drop_rate=0.2, dup_rate=0.1, seed=seed)),
)


def _run_tier(plan_for):
    elapsed = 0.0
    retransmissions = dropped = 0
    goodputs = []
    latencies = []
    for seed in SEEDS:
        workload = random_traffic(3, MESSAGES, seed=seed)
        faults = plan_for(seed) if plan_for else None
        started = time.perf_counter()
        result = run_simulation(
            make_reliable(make_factory(FifoProtocol)),
            workload,
            seed=seed,
            latency=LATENCY,
            faults=faults,
        )
        elapsed += time.perf_counter() - started
        assert result.delivered_all, result.undelivered
        retransmissions += result.stats.retransmissions
        dropped += result.stats.packets_dropped
        goodputs.append(result.stats.goodput)
        latencies.append(result.stats.mean_delivery_latency)
    runs = len(list(SEEDS))
    return {
        "ms_per_run": 1000.0 * elapsed / runs,
        "retransmissions": retransmissions,
        "dropped": dropped,
        "goodput": sum(goodputs) / runs,
        "latency": sum(latencies) / runs,
    }


def test_fault_overhead_table():
    rows = []
    measured = {}
    for label, plan_for in TIERS:
        tier = _run_tier(plan_for)
        measured[label] = tier
        rows.append(
            [
                label,
                "%.1f" % tier["ms_per_run"],
                tier["dropped"],
                tier["retransmissions"],
                "%.3f" % tier["goodput"],
                "%.1f" % tier["latency"],
            ]
        )

    table = format_table(
        ["drop rate", "ms/run", "drops", "retransmits", "goodput", "mean latency"],
        rows,
    )
    write_result(
        "fault_overhead",
        "ARQ recovery cost, Reliable(FIFO), %d msgs x %d seeds\n\n%s"
        % (MESSAGES, len(list(SEEDS)), table),
    )

    # The reliability layer is free on a reliable network...
    assert measured["0%"]["retransmissions"] == 0
    assert measured["0%"]["goodput"] == 1.0
    # ...and recovery costs rise monotonically with the fault rate.
    assert measured["5%"]["retransmissions"] > 0
    assert measured["20%+dup"]["retransmissions"] > measured["5%"]["retransmissions"]
    assert measured["20%+dup"]["goodput"] < measured["5%"]["goodput"] < 1.0
