"""E8 -- performance of the reproduction's own machinery.

Not a paper artifact: scaling curves for the classifier, predicate
evaluation, projection and the simulator, so regressions in the
implementation are visible.
"""

import pytest

from repro.core.classifier import classify
from repro.predicates.catalog import CAUSAL_B2, FIFO, crown
from repro.predicates.evaluation import run_admitted
from repro.protocols import CausalRstProtocol, GeneratedTaggedProtocol, TaglessProtocol
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency, random_traffic, run_simulation


@pytest.mark.parametrize("k", [2, 4, 8, 12])
def test_e8_classifier_vs_crown_size(benchmark, k):
    predicate = crown(k)
    verdict = benchmark(classify, predicate)
    assert verdict.min_order == k


@pytest.mark.parametrize("messages", [20, 60, 120])
def test_e8_predicate_evaluation_vs_run_size(benchmark, messages):
    result = run_simulation(
        make_factory(CausalRstProtocol),
        random_traffic(4, messages, seed=1),
        seed=1,
    )
    run = result.user_run

    def evaluate():
        return run_admitted(run, CAUSAL_B2)

    assert benchmark(evaluate)


@pytest.mark.parametrize("messages", [50, 150, 400])
def test_e8_simulator_throughput(benchmark, messages):
    workload = random_traffic(5, messages, seed=2)

    def simulate():
        return run_simulation(
            make_factory(TaglessProtocol),
            workload,
            seed=2,
            latency=UniformLatency(1.0, 20.0),
        )

    result = benchmark(simulate)
    assert result.delivered_all


@pytest.mark.parametrize("messages", [30, 60])
def test_e8_projection_and_checking(benchmark, messages):
    result = run_simulation(
        make_factory(CausalRstProtocol),
        random_traffic(4, messages, seed=3),
        seed=3,
    )
    system = result.system_run

    def project():
        return system.users_view()

    run = benchmark(project)
    assert run.is_complete()


def test_e8_generated_protocol_cost(benchmark):
    """The knowledge-complete generated protocol vs its specification."""
    workload = random_traffic(3, 25, seed=4)

    def simulate():
        return run_simulation(
            make_factory(GeneratedTaggedProtocol, [FIFO]),
            workload,
            seed=4,
            latency=UniformLatency(1.0, 20.0),
        )

    result = benchmark(simulate)
    assert result.delivered_all
