"""E1 -- the §4.3 classification table.

Regenerates, for every catalogue specification, the paper's table:

    cycle exists?  ->  implementable
    min cycle order 0 / 1 / >=2  ->  tagless / tagged / general

and times the classifier on representative predicates.
"""

import pytest

from repro.core.classifier import classify, classify_specification
from repro.predicates.catalog import CATALOG, CAUSAL_B2, EXAMPLE_1, crown

from conftest import format_table, write_result


def build_classification_table():
    rows = []
    for entry in CATALOG:
        verdict = classify_specification(entry.specification)
        strongest = max(
            verdict.members, key=lambda m: m.protocol_class.strength
        )
        rows.append(
            (
                entry.name,
                entry.paper_ref,
                "yes" if strongest.cycles else "no",
                strongest.min_order if strongest.min_order is not None else "-",
                verdict.protocol_class.value,
                entry.expected_class,
                "OK" if verdict.protocol_class.value == entry.expected_class else "DIFF",
            )
        )
    return rows


def test_e1_regenerate_table(benchmark):
    rows = benchmark(build_classification_table)
    table = format_table(
        ["specification", "paper", "cycle", "min order", "classified", "paper class", "match"],
        rows,
    )
    write_result("e1_classification_table", table)
    assert all(row[-1] == "OK" for row in rows)


@pytest.mark.parametrize(
    "predicate",
    [CAUSAL_B2, EXAMPLE_1, crown(2), crown(6)],
    ids=["causal", "example-1", "crown-2", "crown-6"],
)
def test_e1_classifier_speed(benchmark, predicate):
    verdict = benchmark(classify, predicate)
    assert verdict.protocol_class is not None
