"""E10 -- the §1/§2 application claim: snapshot algorithms need ordering.

"Many distributed algorithms work correctly only in the presence of FIFO
channels" (§1); asynchronous consistent-cut protocols are the §2 example.
Regenerates, as a table: Chandy-Lamport snapshot consistency rates over
each ordering protocol, across seeds, on a reordering network.
"""

import pytest

from repro.apps import run_snapshot_experiment
from repro.protocols import CausalRstProtocol, FifoProtocol, TaglessProtocol
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency

from conftest import format_table, write_result

LATENCY = UniformLatency(low=1.0, high=30.0)
SEEDS = range(10)

PROTOCOLS = [
    ("tagless", make_factory(TaglessProtocol)),
    ("fifo", make_factory(FifoProtocol)),
    ("causal-rst", make_factory(CausalRstProtocol)),
]


def run_snapshot_study():
    rows = []
    for name, factory in PROTOCOLS:
        consistent = complete = 0
        worst_drift = 0
        for seed in SEEDS:
            report = run_snapshot_experiment(factory, seed=seed, latency=LATENCY)
            consistent += report.consistent
            complete += report.all_complete
            worst_drift = max(
                worst_drift, abs(report.recorded_total - report.expected_total)
            )
        total = len(list(SEEDS))
        rows.append((name, total, complete, consistent, worst_drift))
    return rows


def test_e10_regenerate_study(benchmark):
    rows = benchmark(run_snapshot_study)
    table = format_table(
        ["protocol", "snapshots", "complete", "consistent", "worst drift"],
        rows,
    )
    write_result("e10_snapshot_study", table)
    by_name = {row[0]: row for row in rows}
    # FIFO (and anything stronger) makes every snapshot consistent.
    assert by_name["fifo"][3] == by_name["fifo"][1]
    assert by_name["causal-rst"][3] == by_name["causal-rst"][1]
    # Without ordering, snapshots drift.
    assert by_name["tagless"][3] < by_name["tagless"][1]
    assert by_name["tagless"][4] > 0


def test_e10_snapshot_speed(benchmark):
    def run_one():
        return run_snapshot_experiment(
            make_factory(FifoProtocol), seed=0, latency=LATENCY
        )

    report = benchmark(run_one)
    assert report.consistent


def run_chat_study():
    from repro.apps import run_chat_experiment
    from repro.broadcast import CausalBroadcastProtocol

    rows = []
    for name, factory in [
        ("tagless", make_factory(TaglessProtocol)),
        ("causal-rst (unicast)", make_factory(CausalRstProtocol)),
        ("causal-broadcast (bss)", make_factory(CausalBroadcastProtocol)),
    ]:
        anomalies = 0
        posts = 0
        for seed in SEEDS:
            report = run_chat_experiment(factory, seed=seed, latency=LATENCY)
            anomalies += len(report.anomalies)
            posts += report.posts
        rows.append((name, posts, anomalies))
    return rows


def test_e10_chat_study(benchmark):
    """Group chat: reply-before-question anomalies per protocol.

    The subtle row is the middle one: *unicast* causal ordering still
    leaks anomalies because the copies of one post are concurrent
    messages; only true causal broadcast removes them all.
    """
    rows = benchmark(run_chat_study)
    table = format_table(
        ["protocol", "posts", "reply-before-question anomalies"], rows
    )
    write_result("e10_chat_study", table)
    by_name = {row[0]: row for row in rows}
    assert by_name["causal-broadcast (bss)"][2] == 0
    assert 0 < by_name["causal-rst (unicast)"][2] < by_name["tagless"][2]
