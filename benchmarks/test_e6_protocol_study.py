"""E6 -- the constructive side of Theorem 1 as a simulation study.

For one protocol per class (plus variants), over a common seeded workload
grid, regenerates the table the theory predicts:

- every protocol satisfies its own specification with zero violations;
- tagless and tagged protocols use **zero control messages**;
- the general (logically synchronous) protocols use control messages;
- tag sizes grow with the strength of the tagged guarantee.

Absolute latencies depend on the simulated network; the *shape* (who
pays which cost) is the result.
"""

import pytest

from repro.predicates.catalog import (
    ASYNC_ORDERING,
    CAUSAL_ORDERING,
    FIFO_ORDERING,
    LOGICALLY_SYNCHRONOUS,
    TWO_WAY_FLUSH,
    k_weaker_causal_spec,
)
from repro.protocols import (
    CausalRstProtocol,
    CausalSesProtocol,
    FifoProtocol,
    FlushChannelProtocol,
    KWeakerCausalProtocol,
    SyncCoordinatorProtocol,
    SyncRendezvousProtocol,
    TaglessProtocol,
)
from repro.protocols.base import make_factory
from repro.simulation import UniformLatency, random_traffic, run_simulation
from repro.verification import check_simulation

from conftest import format_table, write_result

LATENCY = UniformLatency(low=1.0, high=40.0)
SEEDS = range(5)

STUDY = [
    ("tagless", make_factory(TaglessProtocol), ASYNC_ORDERING, "tagless"),
    ("fifo", make_factory(FifoProtocol), FIFO_ORDERING, "tagged"),
    ("flush", make_factory(FlushChannelProtocol), TWO_WAY_FLUSH, "tagged"),
    ("k-weaker(2)", make_factory(KWeakerCausalProtocol, 2), k_weaker_causal_spec(2), "tagged"),
    ("causal-rst", make_factory(CausalRstProtocol), CAUSAL_ORDERING, "tagged"),
    ("causal-ses", make_factory(CausalSesProtocol), CAUSAL_ORDERING, "tagged"),
    ("sync-coordinator", make_factory(SyncCoordinatorProtocol), LOGICALLY_SYNCHRONOUS, "general"),
    ("sync-rendezvous", make_factory(SyncRendezvousProtocol), LOGICALLY_SYNCHRONOUS, "general"),
]


def run_study():
    rows = []
    for name, factory, spec, klass in STUDY:
        violations = 0
        live = True
        control = 0
        tags = 0.0
        latency = 0.0
        e2e = 0.0
        delayed = 0
        for seed in SEEDS:
            workload = random_traffic(4, 40, seed=seed, color_every=8)
            result = run_simulation(factory, workload, seed=seed, latency=LATENCY)
            outcome = check_simulation(result, spec)
            violations += len(outcome.violations)
            live = live and outcome.live and outcome.safe
            control += result.stats.control_messages
            tags += result.stats.mean_tag_bytes
            latency += result.stats.mean_delivery_latency
            e2e += result.stats.mean_end_to_end_latency
            delayed += result.stats.delayed_deliveries
        count = len(list(SEEDS))
        rows.append(
            (
                name,
                klass,
                "yes" if live else "NO",
                violations,
                control // count,
                "%.0f" % (tags / count),
                delayed // count,
                "%.1f" % (latency / count),
                "%.1f" % (e2e / count),
            )
        )
    return rows


def test_e6_regenerate_study(benchmark):
    rows = benchmark(run_study)
    table = format_table(
        [
            "protocol",
            "class",
            "spec ok",
            "violations",
            "ctrl msgs/run",
            "tag bytes/msg",
            "delayed/run",
            "send->deliver",
            "invoke->deliver",
        ],
        rows,
    )
    write_result("e6_protocol_study", table)

    by_name = {row[0]: row for row in rows}
    # Every protocol implements its spec.
    assert all(row[2] == "yes" and row[3] == 0 for row in rows)
    # Control messages: exactly the general class uses them (Theorem 1).
    for row in rows:
        if row[1] == "general":
            assert row[4] > 0, row
        else:
            assert row[4] == 0, row
    # Tag size ordering: do-nothing < fifo < causal matrices.
    assert float(by_name["tagless"][5]) <= 1
    assert float(by_name["fifo"][5]) < float(by_name["causal-rst"][5])
    # The general protocols pay in end-to-end latency (send inhibition):
    # the serialized coordinator is far slower invoke-to-deliver than the
    # do-nothing protocol.
    assert float(by_name["sync-coordinator"][8]) > 2 * float(by_name["tagless"][8])


@pytest.mark.parametrize(
    "name,factory",
    [(name, factory) for name, factory, _, _ in STUDY],
    ids=[name for name, *_ in STUDY],
)
def test_e6_simulation_speed(benchmark, name, factory):
    workload = random_traffic(4, 40, seed=0, color_every=8)

    def simulate():
        return run_simulation(factory, workload, seed=0, latency=LATENCY)

    result = benchmark(simulate)
    assert result.delivered_all
