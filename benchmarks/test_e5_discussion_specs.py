"""E5 -- the §6 discussion: classification of the application specs.

Regenerates the paper's closing claims:

- FIFO, k-weaker causal, local/global forward-flush: tagging suffices;
- the mobile handoff condition: control messages are required;
- "deliver the second message before the first": not implementable.
"""

import pytest

from repro.core.classifier import classify, classify_specification
from repro.predicates.catalog import catalog_by_name, k_weaker_causal

from conftest import format_table, write_result

CLAIMS = [
    ("fifo", "tagged", "tagging sufficient"),
    ("k-weaker-causal-1", "tagged", "tagging sufficient"),
    ("k-weaker-causal-2", "tagged", "tagging sufficient"),
    ("local-forward-flush", "tagged", "tagging sufficient"),
    ("global-forward-flush", "tagged", "tagging sufficient"),
    ("mobile-handoff", "general", "control messages required"),
    ("second-before-first", "not_implementable", "would require knowing the future"),
]


def test_e5_regenerate_claims(benchmark):
    benchmark(lambda: None)
    rows = []
    by_name = catalog_by_name()
    for name, expected, paper_claim in CLAIMS:
        verdict = classify_specification(by_name[name].specification)
        rows.append(
            (
                name,
                paper_claim,
                verdict.protocol_class.value,
                "OK" if verdict.protocol_class.value == expected else "DIFF",
            )
        )
    table = format_table(["specification", "paper claim", "classified", "match"], rows)
    write_result("e5_discussion_specs", table)
    assert all(row[-1] == "OK" for row in rows)


@pytest.mark.parametrize("k", [0, 1, 2, 4])
def test_e5_k_weaker_scaling(benchmark, k):
    """Classifier cost across the k-weaker family (arity k + 2)."""
    predicate = k_weaker_causal(k)
    verdict = benchmark(classify, predicate)
    assert verdict.protocol_class.value == "tagged"
