"""Simulated vs. real-socket throughput for the protocol catalogue.

The same unmodified protocol factories run twice per row: once under the
deterministic simulator (virtual time; throughput is simulated user
messages per *wall* second, from ``SimulationResult.wall_seconds``) and
once over real loopback TCP via :func:`repro.net.run_cluster_sync`
(three `NetHost`s in one event loop, real sockets, wall-clock delivery
latency).  The table records msgs/sec and p99 delivery latency for a
tagless-tagged-general cross-section of the catalogue: ``fifo``
(tagged, no control traffic), ``causal-rst`` (tagged, matrix clocks)
and ``sync-coord`` (general; every message costs coordinator round
trips, which is exactly what the real-network numbers expose).

Set ``NET_THROUGHPUT_SMOKE=1`` to shrink the workload for CI.
"""

from __future__ import annotations

import os
import time

from conftest import format_table, write_result

from repro.net import run_cluster_sync
from repro.protocols import catalogue
from repro.simulation import random_traffic, run_simulation

SMOKE = bool(os.environ.get("NET_THROUGHPUT_SMOKE"))

PROTOCOLS = ("fifo", "causal-rst", "sync-coord")
N_PROCESSES = 3
SIM_MESSAGES = 60 if SMOKE else 300
NET_RATE = 200.0 if SMOKE else 1500.0
NET_DURATION = 0.5 if SMOKE else 2.0
#: 1 virtual unit == 1ms of wall time: latencies stay protocol-bound
#: rather than timer-bound, and sync round trips converge quickly.
TIME_SCALE = 0.001


def _simulated(entry):
    """Mean simulated msgs/sec (wall) and p99 virtual latency."""
    per_second = []
    p99 = []
    for seed in range(3):
        result = run_simulation(
            entry.factory,
            random_traffic(N_PROCESSES, SIM_MESSAGES, seed=seed),
            seed=seed,
        )
        assert result.delivered_all, result.undelivered
        per_second.append(result.user_messages_per_second)
        p99.append(result.stats.delivery_latency_percentile(99))
    runs = len(per_second)
    return sum(per_second) / runs, sum(p99) / runs


def _networked(name, entry):
    report = run_cluster_sync(
        entry.factory,
        N_PROCESSES,
        protocol_name=name,
        rate=NET_RATE,
        duration=NET_DURATION,
        seed=0,
        time_scale=TIME_SCALE,
        quiesce_timeout=60.0,
        run_id="bench-%s" % name,
    )
    assert report.quiesced, report.render()
    assert not report.errors, report.render()
    assert report.delivered >= report.invoked == report.requested
    return report


def test_net_throughput_table():
    rows = []
    measured = {}
    for name in PROTOCOLS:
        entry = catalogue()[name]
        sim_rate, sim_p99 = _simulated(entry)
        report = _networked(name, entry)
        measured[name] = (sim_rate, report)
        rows.append(
            [
                name,
                "%.0f" % sim_rate,
                "%.1f" % sim_p99,
                "%.0f" % report.delivered_per_sec,
                "%.2f" % report.p99_ms,
                "%.2f" % report.e2e_p99_ms,
                report.delivered,
            ]
        )

    table = format_table(
        [
            "protocol",
            "sim msgs/s",
            "sim p99 (units)",
            "tcp msgs/s",
            "tcp p99 (ms)",
            "tcp e2e p99 (ms)",
            "tcp delivered",
        ],
        rows,
    )
    preamble = (
        "Simulated vs. loopback-TCP throughput (%d processes).\n"
        "sim: %d-message random traffic x3 seeds; virtual-time latency\n"
        "percentiles, throughput = simulated user msgs per wall second.\n"
        "tcp: run_cluster open loop at %.0f msgs/s for %.1fs, time scale\n"
        "%s s/unit; p99 is wall-clock send->deliver, e2e p99 is\n"
        "invoke->deliver (includes protocol inhibition, e.g. the sync\n"
        "coordinator's grant wait).\n"
        "Generated %s.\n\n"
        % (
            N_PROCESSES,
            SIM_MESSAGES,
            NET_RATE,
            NET_DURATION,
            TIME_SCALE,
            time.strftime("%Y-%m-%d"),
        )
    )
    write_result("net_throughput", preamble + table)

    # Open-loop at a sustainable rate, every protocol delivers at the
    # offered rate, and on loopback inside one event loop the grant
    # round trips cost microseconds -- the robust asymmetry is control
    # traffic: the general protocol pays for its specification in
    # control messages on the real wire (Theorem 1), the tagged ones
    # pay nothing.
    def control_messages(report):
        return sum(s.get("control_messages", 0) for s in report.host_stats)

    fifo = measured["fifo"][1]
    sync = measured["sync-coord"][1]
    assert control_messages(fifo) == 0
    # REQ/GRANT/DONE hops that actually cross a process boundary: with
    # uniform random pairs over 3 processes that is 2 per message in
    # expectation (self-addressed control short-circuits locally).
    assert control_messages(sync) >= 1.5 * sync.delivered
    # And every networked run must have delivered everything it accepted.
    for name, (_, report) in measured.items():
        assert report.delivered >= report.invoked, name
