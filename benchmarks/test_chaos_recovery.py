"""Recovery benchmarks for the resilience layer.

Three tables, all produced by the same seeded chaos harness the
``repro chaos`` command runs:

``chaos_sweep``
    the acceptance sweep -- seeded plans (kill-restart and link-sever
    included) across a cross-section of the catalogue, every run
    asserting the three invariants: violation-free ordering, no acked
    message lost or double-delivered, re-convergence within deadline.

``chaos_reconnect``
    reconnect-and-resume time: one outage (a sever or a kill) spans the
    whole traffic window and heals exactly when traffic stops, so the
    convergence stopwatch measures the supervised re-dial plus the ARQ
    catching the backlog up (for ``kill``: the WAL restart too).

``chaos_backpressure``
    goodput with bounded per-peer queues + closed-loop watermark
    throttling versus effectively unbounded queues with an open-loop
    generator, under a mid-run blackhole.  The bounded column trades a
    little goodput for a bounded memory envelope (shed frames ride the
    ARQ's retransmit path, so the loss invariant holds either way).

Set ``CHAOS_RECOVERY_SMOKE=1`` to shrink the sweep for CI.
"""

from __future__ import annotations

import os
import tempfile

from conftest import format_table, write_result

from repro.chaos import ChaosAction, ChaosPlan, run_chaos_sync
from repro.net.resilience import ReconnectPolicy, ResilienceConfig

SMOKE = bool(os.environ.get("CHAOS_RECOVERY_SMOKE"))

#: Tagged (fifo), matrix-clock causal, vector-clock causal, tagless --
#: the ordering-strength cross-section the paper's catalogue spans.
SWEEP_PROTOCOLS = (
    ("fifo", "causal-rst") if SMOKE else ("fifo", "causal-rst", "causal-ses", "tagless")
)
#: Seed 0 schedules link severs, seed 1 kill-restarts plus a sever
#: (see ChaosPlan.generate): together every run mixes both shapes.
SWEEP_SEEDS = (0, 1)
RATE = 80.0
DURATION = 1.5 if SMOKE else 2.0
DEADLINE = 20.0


def _run(protocol, seed, rate=RATE, **kwargs):
    with tempfile.TemporaryDirectory(prefix="chaos-bench-") as root:
        return run_chaos_sync(
            protocol,
            wal_root=root,
            seed=seed,
            rate=rate,
            duration=DURATION,
            convergence_deadline=DEADLINE,
            **kwargs,
        )


def test_chaos_sweep_table():
    rows = []
    for protocol in SWEEP_PROTOCOLS:
        for seed in SWEEP_SEEDS:
            report = _run(protocol, seed)
            kinds = sorted(
                {action["kind"] for action in report.plan["actions"]}
            )
            rows.append(
                [
                    protocol,
                    seed,
                    "+".join(kinds),
                    report.acked,
                    len(report.acked_lost),
                    len(report.double_delivered),
                    "none" if report.violation is None else "YES",
                    "%.2f" % report.converge_seconds,
                    "OK" if report.ok else "FAILED",
                ]
            )
            assert report.ok, report.render()
    table = format_table(
        [
            "protocol",
            "seed",
            "faults",
            "acked",
            "lost",
            "double",
            "violation",
            "converge s",
            "verdict",
        ],
        rows,
    )
    write_result("chaos_sweep", table)
    # The sweep must include both recovery shapes.
    fault_mixes = {row[2] for row in rows}
    assert any("kill" in mix for mix in fault_mixes)
    assert any("sever" in mix for mix in fault_mixes)


def _outage_plan(kind, n_processes=3):
    # One outage spanning the whole traffic window: apply_action heals
    # it (and restarts the dead host) right as the load finishes, so
    # converge_seconds is the reconnect-and-resume time.
    src = 0 if kind in ("sever", "blackhole") else None
    return ChaosPlan(
        seed=0,
        n_processes=n_processes,
        actions=(
            ChaosAction(
                at=0.3, kind=kind, target=1, duration=DURATION, src=src
            ),
        ),
    )


def test_reconnect_and_resume_time_table():
    rows = []
    for kind in ("sever", "blackhole", "kill"):
        seconds = []
        redials = 0
        for attempt in range(1 if SMOKE else 3):
            report = _run("fifo", attempt, plan=_outage_plan(kind))
            assert report.ok, report.render()
            seconds.append(report.converge_seconds)
            redials += report.redials
        rows.append(
            [
                kind,
                len(seconds),
                "%.2f" % min(seconds),
                "%.2f" % (sum(seconds) / len(seconds)),
                "%.2f" % max(seconds),
                redials,
            ]
        )
    table = format_table(
        ["outage", "runs", "min s", "mean s", "max s", "re-dials"], rows
    )
    write_result("chaos_reconnect", table)


#: The backpressure comparison needs real pressure: a rate high enough
#: that a blackholed peer's queue outruns the bounded limits below.
PRESSURE_RATE = 600.0


def _bounded():
    return ResilienceConfig(
        heartbeat_interval=0.05,
        reconnect=ReconnectPolicy(base=0.05, cap=0.5, deadline=DEADLINE),
        high_watermark=32,
        low_watermark=8,
        queue_limit=64,
    )


def _unbounded():
    return ResilienceConfig(
        heartbeat_interval=0.05,
        reconnect=ReconnectPolicy(base=0.05, cap=0.5, deadline=DEADLINE),
        high_watermark=1_000_000,
        low_watermark=100_000,
        queue_limit=1_000_000,
    )


def test_goodput_under_watermark_table():
    # Two congestion shapes.  ``fifo`` with a blackholed *peer* piles
    # frames into the transport queue (the ``queue_limit`` shed path);
    # ``sync-coord`` with a blackholed *coordinator* piles
    # invoked-but-ungranted work into the protocol itself (the
    # ``pending_local`` watermark path, which signals BACKPRESSURE and
    # throttles a closed-loop generator).
    scenarios = (
        ("fifo", _outage_plan("blackhole")),
        (
            "sync-coord",
            ChaosPlan(
                seed=0,
                n_processes=3,
                actions=(
                    ChaosAction(
                        at=0.3, kind="blackhole", target=0, duration=DURATION
                    ),
                ),
            ),
        ),
    )
    rows = []
    for protocol, plan in scenarios:
        for label, config, closed_loop in (
            ("bounded+closed-loop", _bounded(), True),
            ("unbounded+open-loop", _unbounded(), False),
        ):
            report = _run(
                protocol,
                0,
                rate=PRESSURE_RATE,
                plan=plan,
                resilience=config,
                closed_loop=closed_loop,
            )
            assert report.ok, report.render()
            wall = DURATION + report.converge_seconds
            rows.append(
                [
                    protocol,
                    label,
                    report.requested,
                    report.delivered,
                    "%.0f" % (report.delivered / wall),
                    report.frames_shed,
                    report.backpressure_signals,
                    "%.2f" % report.converge_seconds,
                    "OK" if report.ok else "FAILED",
                ]
            )
    table = format_table(
        [
            "protocol",
            "queueing",
            "requested",
            "delivered",
            "goodput/s",
            "shed",
            "bp signals",
            "converge s",
            "verdict",
        ],
        rows,
    )
    write_result("chaos_backpressure", table)
    # The bounded configurations really did engage their safety valves.
    assert any(int(row[5]) > 0 for row in rows)  # frames shed (fifo)
    assert any(int(row[6]) > 0 for row in rows)  # watermark signals
