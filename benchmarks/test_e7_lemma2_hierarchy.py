"""E7 -- Lemma 2 / §3.2.1: the system-level hierarchy X_U ⊆ X_td ⊆ X_gn.

Two regenerations:

1. *Constructions* (the proof of Theorem 1): expanding every enumerated
   user run with adjacent star events (Figure 5) lands in ``X_U``; if the
   user run is causally ordered the expansion is in ``X_td``; if it is
   logically synchronous the expansion is in ``X_gn`` -- these are exactly
   the runs each protocol class can be forced into.
2. *Recorded runs*: the do-nothing protocol's executions are always in
   ``X_U`` (it never delays, so star events stay adjacent), while
   inhibiting protocols leave ``X_U`` precisely when they delay; the
   adversarial network keeps some tagless runs outside ``X_td``.
"""

import pytest

from repro.protocols import (
    CausalRstProtocol,
    FifoProtocol,
    SyncCoordinatorProtocol,
    TaglessProtocol,
)
from repro.protocols.base import make_factory
from repro.runs.construction import system_run_from_user_run
from repro.runs.enumeration import enumerate_universe
from repro.runs.limit_sets import is_causally_ordered, is_logically_synchronous
from repro.runs.system_run import in_x_gn, in_x_td, in_x_u
from repro.simulation import UniformLatency, random_traffic, run_simulation

from conftest import format_table, write_result

LATENCY = UniformLatency(low=1.0, high=40.0)


def test_e7_constructions_realize_the_hierarchy(benchmark):
    benchmark(lambda: None)
    rows = []
    total = u = td = gn = co_user = sync_user = 0
    for run in enumerate_universe(2, 2):
        system = system_run_from_user_run(run)
        assert system.users_view() == run
        total += 1
        assert in_x_u(system)
        u += 1
        if is_causally_ordered(run):
            co_user += 1
            assert in_x_td(system)
        if is_logically_synchronous(run):
            sync_user += 1
            assert in_x_gn(system)
        td += in_x_td(system)
        gn += in_x_gn(system)
    rows.append(("2p/2m universe", total, u, td, gn))
    table = format_table(
        ["source", "runs", "in X_U", "in X_td", "in X_gn"], rows
    )
    write_result("e7_lemma2_constructions", table)
    assert gn <= td <= u == total
    assert gn == sync_user and td == co_user


def classify_system_runs(factory, seeds=range(5)):
    u = td = gn = total = delayed = 0
    for seed in seeds:
        result = run_simulation(
            factory, random_traffic(3, 25, seed=seed), seed=seed, latency=LATENCY
        )
        run = result.system_run
        total += 1
        u += in_x_u(run)
        td += in_x_td(run)
        gn += in_x_gn(run)
        delayed += result.stats.delayed_deliveries > 0
    return total, u, td, gn, delayed


def test_e7_recorded_runs(benchmark):
    benchmark(lambda: None)
    rows = []
    for name, factory in [
        ("tagless", make_factory(TaglessProtocol)),
        ("fifo", make_factory(FifoProtocol)),
        ("causal-rst", make_factory(CausalRstProtocol)),
        ("sync-coordinator", make_factory(SyncCoordinatorProtocol)),
    ]:
        total, u, td, gn, delayed = classify_system_runs(factory)
        rows.append((name, total, u, td, gn, delayed))
    table = format_table(
        ["protocol", "runs", "in X_U", "in X_td", "in X_gn", "runs w/ delays"],
        rows,
    )
    write_result("e7_lemma2_recorded_runs", table)

    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert row[4] <= row[3] <= row[2]  # hierarchy on every protocol
    # The do-nothing protocol never delays: every run is in X_U, yet the
    # adversarial network keeps some outside X_td.
    assert by_name["tagless"][2] == by_name["tagless"][1]
    assert by_name["tagless"][3] < by_name["tagless"][1]
    # Inhibiting protocols leave X_U exactly when they delayed something.
    for name in ("fifo", "causal-rst"):
        total, u, _, _, delayed = by_name[name][1:]
        assert u == total - delayed


def test_e7_construction_speed(benchmark):
    runs = list(enumerate_universe(2, 2))

    def expand_all():
        return [system_run_from_user_run(run) for run in runs]

    systems = benchmark(expand_all)
    assert len(systems) == 14
