"""Cost of durability: loopback throughput with and without the WAL.

Three configurations of the same ``fifo`` cluster (3 `NetHost`s, real
loopback TCP, open-loop load):

baseline
    no WAL anywhere -- the PR 5 runtime as-is;
host WAL
    every host appends EVENT/INPUT records to its own segment directory
    with fsync batching (``sync_every=64``) -- the crash-recovery
    configuration of ``repro serve --wal``;
host WAL + record
    additionally the observer's merged stream is recorded for
    ``repro replay`` (``repro load --record``).

The acceptance bar: host-WAL throughput within 15% of baseline.  A
micro row times raw ``SegmentWriter.append`` with and without fsync so
the table separates protocol cost from disk cost.

Set ``WAL_OVERHEAD_SMOKE=1`` to shrink the workload for CI.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import format_table, write_result

from repro.net import run_cluster_sync
from repro.protocols import catalogue
from repro.wal import SegmentWriter, WalRecord
from repro.wal.records import CHECKPOINT

SMOKE = bool(os.environ.get("WAL_OVERHEAD_SMOKE"))

N_PROCESSES = 3
RATE = 250.0 if SMOKE else 1200.0
DURATION = 0.5 if SMOKE else 1.5
TIME_SCALE = 0.001
MICRO_APPENDS = 500 if SMOKE else 5000
#: Acceptance: WAL-on loopback throughput within 15% of WAL-off.
MAX_OVERHEAD = 0.15


def _cluster(name, wal_dir=None, record_dir=None, observe=False):
    entry = catalogue()["fifo"]
    report = run_cluster_sync(
        entry.factory,
        N_PROCESSES,
        protocol_name="fifo",
        rate=RATE,
        duration=DURATION,
        seed=0,
        observe=observe,
        spec_name="fifo" if record_dir is not None else None,
        time_scale=TIME_SCALE,
        quiesce_timeout=60.0,
        run_id="bench-wal-%s" % name,
        wal_dir=wal_dir,
        record_dir=record_dir,
    )
    assert report.quiesced, report.render()
    assert not report.errors, report.render()
    assert report.delivered >= report.invoked == report.requested
    return report


def _wal_bytes(directory):
    total = 0
    for root, _, files in os.walk(directory):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


def _micro_append_rate(fsync):
    directory = tempfile.mkdtemp(prefix="wal-micro-")
    try:
        writer = SegmentWriter(directory, fsync=fsync, sync_every=64)
        record = WalRecord(kind=CHECKPOINT, body={"requested": 1, "t": 0.0})
        start = time.perf_counter()
        for _ in range(MICRO_APPENDS):
            writer.append(record)
        writer.close()
        return MICRO_APPENDS / (time.perf_counter() - start)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def test_wal_overhead_table(tmp_path):
    baseline = _cluster("baseline")
    host_wal = _cluster("host", wal_dir=str(tmp_path / "host"))
    # Recording taps the observer's merged stream; its honest baseline
    # is the observer *without* a recorder (the merge belongs to the
    # observability plane, not the WAL).  The spec verdict is the
    # replay's job -- offline, timed below -- so the live run pays for
    # the appends only.
    observed = _cluster("observer", observe=True)
    recorded = _cluster("record", record_dir=str(tmp_path / "rec"))
    combined = _cluster(
        "combined",
        wal_dir=str(tmp_path / "both"),
        record_dir=str(tmp_path / "rec2"),
    )

    replay_started = time.perf_counter()
    from repro.wal import replay_log

    replayed = replay_log(str(tmp_path / "rec"))
    replay_seconds = time.perf_counter() - replay_started
    assert replayed.violation is None
    assert len(list(replayed.trace.records())) == recorded.observer_events

    def row(name, report, wal_dirs, versus=None):
        reference = (versus or baseline).delivered_per_sec
        overhead = 1.0 - report.delivered_per_sec / reference
        return [
            name,
            "%.0f" % report.delivered_per_sec,
            "%.2f" % report.p50_ms,
            "%.2f" % report.p99_ms,
            "%+.1f%%" % (100.0 * overhead),
            "%.1f" % (sum(map(_wal_bytes, wal_dirs)) / 1024.0),
        ]

    rows = [
        row("baseline (no WAL)", baseline, []),
        row("host WAL (fsync x64)", host_wal, [tmp_path / "host"]),
        row("observer tap (no WAL)", observed, []),
        row(
            "record (vs observer)",
            recorded,
            [tmp_path / "rec"],
            versus=observed,
        ),
        row(
            "host WAL + record",
            combined,
            [tmp_path / "both", tmp_path / "rec2"],
        ),
        [
            "SegmentWriter fsync",
            "%.0f" % _micro_append_rate(True),
            "-",
            "-",
            "-",
            "-",
        ],
        [
            "SegmentWriter no-fsync",
            "%.0f" % _micro_append_rate(False),
            "-",
            "-",
            "-",
            "-",
        ],
    ]
    table = format_table(
        ["configuration", "msg/s", "p50 ms", "p99 ms", "overhead", "KiB"],
        rows,
    )
    table += (
        "\noffline replay + fifo verdict: %d event(s) in %.2fs (%.0f ev/s)\n"
        "note: every role above shares one interpreter (GIL); the\n"
        "combined row stacks 4 WAL writers in-process, which a real\n"
        "`repro serve` deployment (one OS process per host) does not.\n"
        % (
            recorded.observer_events,
            replay_seconds,
            recorded.observer_events / replay_seconds,
        )
    )
    write_result("wal_overhead", table)

    for name, report, reference in (
        ("host WAL", host_wal, baseline),
        ("record", recorded, observed),
    ):
        slowdown = 1.0 - report.delivered_per_sec / reference.delivered_per_sec
        assert slowdown <= MAX_OVERHEAD, (
            "%s throughput fell %.1f%% below its baseline (budget %.0f%%)\n%s"
            % (name, 100 * slowdown, 100 * MAX_OVERHEAD, table)
        )
